//===- tests/test_serialize.cpp - OAT file format tests ---------------------===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//

#include "core/Calibro.h"
#include "oat/MappedOat.h"
#include "oat/Serialize.h"
#include "sim/Simulator.h"
#include "support/BinaryStream.h"
#include "verify/Differential.h"
#include "workload/Workload.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>

using namespace calibro;

namespace {

oat::OatFile buildSample() {
  workload::AppSpec Spec;
  Spec.Name = "sertest";
  Spec.Seed = 21;
  Spec.NumWorkers = 24;
  Spec.NumUtilities = 12;
  dex::App App = workload::makeApp(Spec);
  core::CalibroOptions Opts;
  Opts.EnableCto = true;
  Opts.EnableLtbo = true;
  auto B = core::buildApp(App, Opts);
  EXPECT_TRUE(bool(B)) << B.message();
  return std::move(B->Oat);
}

TEST(ByteStream, FixedAndVarints) {
  ByteWriter W;
  W.u8(0xab);
  W.u16(0x1234);
  W.u32(0xdeadbeef);
  W.u64(0x0123456789abcdefULL);
  W.uleb(0);
  W.uleb(127);
  W.uleb(128);
  W.uleb(0xffffffffffffffffULL);
  W.str("calibro");
  auto Bytes = W.take();

  ByteReader R(Bytes);
  EXPECT_EQ(*R.u8(), 0xab);
  EXPECT_EQ(*R.u16(), 0x1234);
  EXPECT_EQ(*R.u32(), 0xdeadbeefu);
  EXPECT_EQ(*R.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(*R.uleb(), 0u);
  EXPECT_EQ(*R.uleb(), 127u);
  EXPECT_EQ(*R.uleb(), 128u);
  EXPECT_EQ(*R.uleb(), 0xffffffffffffffffULL);
  EXPECT_EQ(*R.str(), "calibro");
  EXPECT_EQ(R.remaining(), 0u);
}

TEST(ByteStream, TruncationIsAnError) {
  ByteWriter W;
  W.u32(42);
  auto Bytes = W.take();
  ByteReader R(Bytes);
  auto V64 = R.u64();
  EXPECT_FALSE(bool(V64));
  consumeError(V64.takeError());

  // A varint with all continuation bits set must not loop forever.
  std::vector<uint8_t> Bad(16, 0xff);
  ByteReader R2(Bad);
  auto V = R2.uleb();
  EXPECT_FALSE(bool(V));
  consumeError(V.takeError());
}

TEST(Serialize, RoundTripPreservesEverything) {
  oat::OatFile O = buildSample();
  auto Bytes = oat::serializeOat(O);
  auto Back = oat::deserializeOat(Bytes);
  ASSERT_TRUE(bool(Back)) << Back.message();

  EXPECT_EQ(Back->AppName, O.AppName);
  EXPECT_EQ(Back->BaseAddress, O.BaseAddress);
  EXPECT_EQ(Back->Text, O.Text);
  ASSERT_EQ(Back->Methods.size(), O.Methods.size());
  for (std::size_t M = 0; M < O.Methods.size(); ++M) {
    const auto &A = O.Methods[M];
    const auto &B = Back->Methods[M];
    EXPECT_EQ(A.MethodIdx, B.MethodIdx);
    EXPECT_EQ(A.Name, B.Name);
    EXPECT_EQ(A.CodeOffset, B.CodeOffset);
    EXPECT_EQ(A.CodeSize, B.CodeSize);
    EXPECT_EQ(A.Map.Entries, B.Map.Entries);
    EXPECT_EQ(A.Side.TerminatorOffsets, B.Side.TerminatorOffsets);
    EXPECT_EQ(A.Side.PcRelRecords, B.Side.PcRelRecords);
    EXPECT_EQ(A.Side.EmbeddedData, B.Side.EmbeddedData);
    EXPECT_EQ(A.Side.SlowPathRanges, B.Side.SlowPathRanges);
    EXPECT_EQ(A.Side.HasIndirectJump, B.Side.HasIndirectJump);
    EXPECT_EQ(A.Side.IsNative, B.Side.IsNative);
  }
  ASSERT_EQ(Back->CtoStubs.size(), O.CtoStubs.size());
  ASSERT_EQ(Back->Outlined.size(), O.Outlined.size());

  // Re-serialization must be byte-identical (the format is canonical).
  EXPECT_EQ(oat::serializeOat(*Back), Bytes);
}

TEST(Serialize, DeserializedImageRunsIdentically) {
  oat::OatFile O = buildSample();
  auto Back = oat::deserializeOat(oat::serializeOat(O));
  ASSERT_TRUE(bool(Back));

  sim::Simulator SimA(O, {});
  sim::Simulator SimB(*Back, {});
  for (uint32_t Entry = 0; Entry < 4; ++Entry) {
    int64_t Args[1] = {static_cast<int64_t>(Entry) * 13 + 1};
    auto RA = SimA.call(Entry, Args);
    auto RB = SimB.call(Entry, Args);
    ASSERT_TRUE(bool(RA) && bool(RB));
    EXPECT_EQ(RA->ReturnValue, RB->ReturnValue);
    EXPECT_EQ(RA->TraceHash, RB->TraceHash);
    EXPECT_EQ(RA->Cycles, RB->Cycles);
  }
}

TEST(Serialize, IsValidElf64) {
  auto Bytes = oat::serializeOat(buildSample());
  ASSERT_GE(Bytes.size(), 64u);
  EXPECT_EQ(Bytes[0], 0x7f);
  EXPECT_EQ(Bytes[1], 'E');
  EXPECT_EQ(Bytes[2], 'L');
  EXPECT_EQ(Bytes[3], 'F');
  EXPECT_EQ(Bytes[4], 2); // ELFCLASS64
  EXPECT_EQ(Bytes[5], 1); // Little-endian
  uint16_t Machine;
  std::memcpy(&Machine, Bytes.data() + 18, 2);
  EXPECT_EQ(Machine, 183); // EM_AARCH64
}

TEST(Serialize, RejectsCorruption) {
  auto Bytes = oat::serializeOat(buildSample());

  {
    auto Bad = Bytes;
    Bad[0] = 0x00; // Break the ELF magic.
    auto R = oat::deserializeOat(Bad);
    EXPECT_FALSE(bool(R));
    consumeError(R.takeError());
  }
  {
    auto Bad = Bytes;
    Bad.resize(Bytes.size() / 2); // Truncate.
    auto R = oat::deserializeOat(Bad);
    EXPECT_FALSE(bool(R));
    consumeError(R.takeError());
  }
  {
    // Flipping a code word that a PcRel record covers must be caught by
    // the embedded validateOat pass.
    auto O = buildSample();
    const oat::OatMethodEntry *Victim = nullptr;
    for (const auto &M : O.Methods)
      if (!M.Side.PcRelRecords.empty()) {
        Victim = &M;
        break;
      }
    ASSERT_NE(Victim, nullptr);
    O.Text[(Victim->CodeOffset + Victim->Side.PcRelRecords[0].InsnOffset) /
           4] = 0xD503201F; // NOP where a branch should be.
    auto Bad = oat::serializeOat(O);
    auto R = oat::deserializeOat(Bad);
    EXPECT_FALSE(bool(R));
    consumeError(R.takeError());
  }
}

//===----------------------------------------------------------------------===//
// Malformed-input corpus: every corruption is an Error, never a crash
//===----------------------------------------------------------------------===//

/// Minimal section-header walk over a serialized image, mirroring the
/// parser's layout assumptions so tests can corrupt one section at a time.
struct ElfSections {
  struct Entry {
    std::string Name;
    std::size_t HeaderAt; ///< File offset of this Elf64_Shdr.
    uint64_t Off, Size;
  };
  std::vector<Entry> Entries;

  static ElfSections scan(const std::vector<uint8_t> &Bytes) {
    auto U16 = [&](std::size_t At) {
      uint16_t V;
      std::memcpy(&V, Bytes.data() + At, 2);
      return V;
    };
    auto U64 = [&](std::size_t At) {
      uint64_t V;
      std::memcpy(&V, Bytes.data() + At, 8);
      return V;
    };
    uint64_t Shoff = U64(40);
    uint16_t Shnum = U16(60), Shstrndx = U16(62);
    EXPECT_LT(Shstrndx, Shnum);

    ElfSections S;
    std::vector<uint32_t> NameOffs;
    for (uint16_t I = 0; I < Shnum; ++I) {
      std::size_t H = static_cast<std::size_t>(Shoff) + std::size_t(I) * 64;
      uint32_t NameOff;
      std::memcpy(&NameOff, Bytes.data() + H, 4);
      NameOffs.push_back(NameOff);
      S.Entries.push_back({"", H, U64(H + 24), U64(H + 32)});
    }
    const Entry &Tab = S.Entries[Shstrndx];
    for (uint16_t I = 0; I < Shnum; ++I) {
      for (std::size_t P = Tab.Off + NameOffs[I];
           P < Tab.Off + Tab.Size && Bytes[P]; ++P)
        S.Entries[I].Name.push_back(static_cast<char>(Bytes[P]));
    }
    return S;
  }

  const Entry *find(const std::string &Name) const {
    for (const auto &E : Entries)
      if (E.Name == Name)
        return &E;
    return nullptr;
  }
};

void expectParseError(const std::vector<uint8_t> &Bytes,
                      const std::string &What) {
  auto R = oat::deserializeOat(Bytes);
  EXPECT_FALSE(bool(R)) << What << ": corrupt image unexpectedly parsed";
  if (!R)
    consumeError(R.takeError());
}

TEST(SerializeMalformed, PerSectionCorruptionIsRejected) {
  auto Bytes = oat::serializeOat(buildSample());
  auto Sections = ElfSections::scan(Bytes);

  const char *OatSections[] = {".text", ".oat.header", ".oat.methods",
                               ".oat.stubs", ".oat.outlined"};
  for (const char *Name : OatSections) {
    const auto *S = Sections.find(Name);
    ASSERT_NE(S, nullptr) << Name;
    ASSERT_GT(S->Size, 2u) << Name;

    auto PatchU64 = [&](std::size_t At, uint64_t V) {
      auto Bad = Bytes;
      std::memcpy(Bad.data() + At, &V, 8);
      return Bad;
    };
    // sh_size grown past EOF: the section claims bytes the file lacks.
    expectParseError(PatchU64(S->HeaderAt + 32, Bytes.size()),
                     std::string(Name) + " grown sh_size");
    expectParseError(PatchU64(S->HeaderAt + 32, ~uint64_t(0)),
                     std::string(Name) + " huge sh_size (overflow bait)");
    // sh_offset pushed past EOF.
    expectParseError(PatchU64(S->HeaderAt + 24, Bytes.size() - 1),
                     std::string(Name) + " sh_offset past EOF");
    // sh_size shrunk: the payload is cut mid-record (or, for .text,
    // un-word-aligned), so the section is truncated from the parser's
    // point of view.
    expectParseError(PatchU64(S->HeaderAt + 32, S->Size - 1),
                     std::string(Name) + " shrunk by one");
    expectParseError(PatchU64(S->HeaderAt + 32, S->Size / 2 | 1),
                     std::string(Name) + " shrunk to odd half");
  }
}

TEST(SerializeMalformed, WholeFileTruncationSweep) {
  auto Bytes = oat::serializeOat(buildSample());
  ASSERT_GT(Bytes.size(), 64u);
  // The section header table lives at the end of the image, so every
  // proper prefix is missing required structure and must parse-reject.
  std::vector<std::size_t> Cuts = {1,  2,  63, 64, 65, Bytes.size() / 2,
                                   Bytes.size() - 2, Bytes.size() - 1};
  for (std::size_t Cut = 3; Cut < Bytes.size(); Cut += 97)
    Cuts.push_back(Cut);
  for (std::size_t Cut : Cuts) {
    auto Bad = Bytes;
    Bad.resize(Cut);
    expectParseError(Bad, "truncated to " + std::to_string(Cut) + " bytes");
  }
}

TEST(SerializeMalformed, BadStubKindIsRejected) {
  auto Bytes = oat::serializeOat(buildSample());
  auto Sections = ElfSections::scan(Bytes);
  const auto *S = Sections.find(".oat.stubs");
  ASSERT_NE(S, nullptr);

  // Payload = uleb count, then records each starting with a u8 kind.
  std::size_t P = static_cast<std::size_t>(S->Off);
  while (Bytes[P] & 0x80)
    ++P; // Skip the count's continuation bytes.
  ++P;   // ... and its final byte; P now sits on the first record's kind.
  ASSERT_LT(P, S->Off + S->Size) << "sample app has no CTO stubs";

  for (uint8_t BadKind : {uint8_t(3), uint8_t(9), uint8_t(0xff)}) {
    auto Bad = Bytes;
    Bad[P] = BadKind;
    auto R = oat::deserializeOat(Bad);
    ASSERT_FALSE(bool(R)) << "stub kind " << int(BadKind) << " accepted";
    EXPECT_NE(R.message().find("bad stub kind"), std::string::npos)
        << R.message();
    EXPECT_EQ(R.category(), ErrCat::BadFormat);
    consumeError(R.takeError());
  }
}

TEST(SerializeMalformed, ParseRejectsInvalidSideInfo) {
  // Lock-in for the parse-boundary fix: inverted ranges and offsets past
  // the code size used to deserialize fine and blow up downstream; they
  // must now be typed side-info errors at parse time.
  struct Case {
    const char *ExpectFault;
    void (*Mutate)(oat::OatMethodEntry &);
  };
  const Case Cases[] = {
      {"slow-path-inverted",
       [](oat::OatMethodEntry &M) {
         M.Side.SlowPathRanges.push_back({8, 4});
       }},
      {"embedded-data-out-of-bounds",
       [](oat::OatMethodEntry &M) {
         M.Side.EmbeddedData.push_back({M.CodeSize, 8});
       }},
      {"pc-rel-out-of-bounds",
       [](oat::OatMethodEntry &M) {
         M.Side.PcRelRecords.push_back({0, M.CodeSize + 4});
       }},
      {"terminator-out-of-bounds",
       [](oat::OatMethodEntry &M) {
         M.Side.TerminatorOffsets.push_back(M.CodeSize);
       }},
  };
  for (const Case &C : Cases) {
    oat::OatFile O = buildSample();
    ASSERT_FALSE(O.Methods.empty());
    C.Mutate(O.Methods[0]);
    auto R = oat::deserializeOat(oat::serializeOat(O));
    ASSERT_FALSE(bool(R)) << C.ExpectFault << " accepted at parse time";
    EXPECT_NE(R.message().find(C.ExpectFault), std::string::npos)
        << R.message();
    EXPECT_EQ(R.category(), ErrCat::SideInfo) << C.ExpectFault;
    consumeError(R.takeError());
  }
}

//===----------------------------------------------------------------------===//
// Round-trip property over random apps
//===----------------------------------------------------------------------===//

TEST(SerializeProperty, RandomAppsRoundTripByteIdentical) {
  // serialize -> parse -> serialize must be the identity on bytes for any
  // buildable app: the format is canonical, so a divergence means either
  // the writer or the parser dropped information.
  for (uint64_t Seed = 0; Seed < 50; ++Seed) {
    workload::AppSpec Spec = verify::randomAppSpec(Seed);
    dex::App App = workload::makeApp(Spec);
    core::CalibroOptions Opts;
    Opts.EnableCto = true;
    Opts.EnableLtbo = true;
    Opts.LtboPartitions = 1 + static_cast<uint32_t>(Seed % 4);
    auto B = core::buildApp(App, Opts);
    ASSERT_TRUE(bool(B)) << "seed " << Seed << ": " << B.message();

    auto Bytes = oat::serializeOat(B->Oat);
    auto Back = oat::deserializeOat(Bytes);
    ASSERT_TRUE(bool(Back)) << "seed " << Seed << ": " << Back.message();
    EXPECT_EQ(oat::serializeOat(*Back), Bytes) << "seed " << Seed;
  }
}

TEST(Serialize, FileRoundTrip) {
  oat::OatFile O = buildSample();
  std::string Path = ::testing::TempDir() + "/calibro_sertest.oat";
  ASSERT_FALSE(bool(oat::writeOatFile(O, Path)));
  auto Back = oat::readOatFile(Path);
  ASSERT_TRUE(bool(Back)) << Back.message();
  EXPECT_EQ(Back->Text, O.Text);
  std::remove(Path.c_str());
}

// The caller-buffer writer and the vector-returning wrapper must emit the
// same bytes, and a reused (dirty, differently-sized) buffer must not leak
// stale content into the image.
TEST(Serialize, BufferWriterMatchesWrapper) {
  oat::OatFile O = buildSample();
  std::vector<uint8_t> Fresh = oat::serializeOat(O);

  std::vector<uint8_t> Reused(Fresh.size() * 2 + 13, 0xAB); // Dirty + bigger.
  oat::serializeOat(O, Reused);
  EXPECT_EQ(Reused, Fresh);

  std::vector<uint8_t> Small(3, 0xCD); // Dirty + smaller.
  oat::serializeOat(O, Small);
  EXPECT_EQ(Small, Fresh);
}

// The mmap-backed reader must parse the identical OatFile the heap-read
// path produced, and re-serializing its result must reproduce the file's
// bytes exactly (the round-trip property, now through the mapping).
TEST(MappedOat, RoundTripMatchesHeapRead) {
  oat::OatFile O = buildSample();
  std::string Path = ::testing::TempDir() + "/calibro_mapped.oat";
  ASSERT_FALSE(bool(oat::writeOatFile(O, Path)));

  auto Mapped = oat::MappedOat::open(Path);
  ASSERT_TRUE(bool(Mapped)) << Mapped.message();
  std::vector<uint8_t> OnDisk(Mapped->bytes().begin(), Mapped->bytes().end());
  EXPECT_EQ(Mapped->size(), OnDisk.size());

  auto Parsed = Mapped->parse();
  ASSERT_TRUE(bool(Parsed)) << Parsed.message();
  EXPECT_EQ(Parsed->Text, O.Text);
  EXPECT_EQ(Parsed->AppName, O.AppName);
  EXPECT_EQ(Parsed->Methods.size(), O.Methods.size());
  EXPECT_EQ(oat::serializeOat(*Parsed), OnDisk);

  // The parsed OatFile owns its data: it must stay intact after the
  // mapping is gone.
  oat::OatFile Own = std::move(*Parsed);
  {
    oat::MappedOat Dead = std::move(*Mapped);
    std::remove(Path.c_str());
  } // Mapping unmapped here.
  EXPECT_EQ(Own.Text, O.Text);
}

TEST(MappedOat, MissingFileFails) {
  auto M = oat::MappedOat::open(::testing::TempDir() + "/calibro_nope.oat");
  EXPECT_FALSE(bool(M));
  EXPECT_FALSE(M.message().empty());
}

TEST(SectionPayload, LocatesSectionsWithoutParsing) {
  oat::OatFile O = buildSample();
  auto Bytes = oat::serializeOat(O);

  auto Text = oat::sectionPayload(Bytes, ".text");
  ASSERT_TRUE(bool(Text)) << Text.message();
  // The payload is a window INTO the serialized buffer, not a copy...
  EXPECT_GE(Text->data(), Bytes.data());
  EXPECT_LE(Text->data() + Text->size(), Bytes.data() + Bytes.size());
  // ...holding exactly the image's .text words.
  ASSERT_EQ(Text->size(), O.Text.size() * sizeof(uint32_t));
  EXPECT_EQ(std::memcmp(Text->data(), O.Text.data(), Text->size()), 0);

  auto Missing = oat::sectionPayload(Bytes, ".does-not-exist");
  EXPECT_FALSE(bool(Missing));
  consumeError(Missing.takeError());

  // A header cut off mid-table must be a clean error, not a wild read.
  for (std::size_t Keep : {0ul, 16ul, 64ul, Bytes.size() / 2}) {
    auto Trunc = oat::sectionPayload(
        std::span<const uint8_t>(Bytes.data(), Keep), ".text");
    EXPECT_FALSE(bool(Trunc)) << "kept " << Keep;
    consumeError(Trunc.takeError());
  }
}

TEST(MappedOat, TextWordsAreZeroCopy) {
  oat::OatFile O = buildSample();
  std::string Path = ::testing::TempDir() + "/calibro_textwords.oat";
  ASSERT_FALSE(bool(oat::writeOatFile(O, Path)));

  auto Mapped = oat::MappedOat::open(Path);
  ASSERT_TRUE(bool(Mapped)) << Mapped.message();
  auto Words = Mapped->textWords();
  ASSERT_TRUE(bool(Words)) << Words.message();

  // The span aliases the mapping — no private copy of the text.
  const uint8_t *Lo = Mapped->bytes().data();
  const uint8_t *Hi = Lo + Mapped->size();
  EXPECT_GE(reinterpret_cast<const uint8_t *>(Words->data()), Lo);
  EXPECT_LE(reinterpret_cast<const uint8_t *>(Words->data() + Words->size()),
            Hi);
  ASSERT_EQ(Words->size(), O.Text.size());
  for (std::size_t I = 0; I < O.Text.size(); ++I)
    ASSERT_EQ((*Words)[I], O.Text[I]) << "word " << I;
  std::remove(Path.c_str());
}

} // namespace
