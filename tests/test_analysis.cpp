//===- tests/test_analysis.cpp - Call graph, GC and merge tests -------------===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The closed-world analysis subsystem: call-graph construction (dex edges,
/// CHA virtual fan-out, anomaly handling), entrypoint-rooted reachability,
/// the global method merger (alias + thunk tiers), and the end-to-end
/// pipeline properties — thread-count independence, the zero-dead no-op
/// guarantee, and behavior preservation under merging.
///
//===----------------------------------------------------------------------===//

#include "aarch64/Encoder.h"
#include "analysis/CallGraph.h"
#include "analysis/Merge.h"
#include "core/Calibro.h"
#include "oat/Serialize.h"
#include "sim/Simulator.h"
#include "workload/Workload.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace calibro;
using namespace calibro::analysis;

namespace {

dex::Insn invoke(dex::Op O, uint32_t Callee) {
  dex::Insn I;
  I.Opcode = O;
  I.Idx = Callee;
  I.NumArgs = 0;
  return I;
}

dex::Insn ret() {
  dex::Insn I;
  I.Opcode = dex::Op::Return;
  return I;
}

/// A method that invokes each listed callee and returns.
dex::Method caller(uint32_t Idx, const std::string &Name,
                   const std::vector<uint32_t> &Static,
                   const std::vector<uint32_t> &Virtual = {}) {
  dex::Method M;
  M.Idx = Idx;
  M.Name = Name;
  M.NumRegs = 4;
  M.NumArgs = 0;
  for (uint32_t C : Static)
    M.Code.push_back(invoke(dex::Op::InvokeStatic, C));
  for (uint32_t C : Virtual)
    M.Code.push_back(invoke(dex::Op::InvokeVirtual, C));
  M.Code.push_back(ret());
  return M;
}

dex::App appOf(std::vector<dex::Method> Methods,
               std::vector<uint32_t> Entrypoints,
               std::vector<dex::TypeLink> Hierarchy = {}) {
  dex::App A;
  A.Name = "test";
  A.Files.emplace_back();
  A.Files.back().Methods = std::move(Methods);
  A.Entrypoints = std::move(Entrypoints);
  A.Hierarchy = std::move(Hierarchy);
  return A;
}

uint32_t movz(uint8_t Rd, uint16_t Imm) {
  a64::Insn I;
  I.Op = a64::Opcode::MovZ;
  I.Rd = Rd;
  I.Imm = Imm;
  return a64::encode(I);
}

uint32_t addReg(uint8_t Rd, uint8_t Rn, uint8_t Rm) {
  a64::Insn I;
  I.Op = a64::Opcode::AddReg;
  I.Rd = Rd;
  I.Rn = Rn;
  I.Rm = Rm;
  return a64::encode(I);
}

uint32_t retInsn() {
  a64::Insn I;
  I.Op = a64::Opcode::Ret;
  I.Rn = a64::LR;
  return a64::encode(I);
}

/// A compiled body: movz prefix word, then a computation tail.
codegen::CompiledMethod body(uint32_t Idx, uint16_t Imm,
                             std::size_t TailAdds = 4) {
  codegen::CompiledMethod M;
  M.MethodIdx = Idx;
  M.Name = "Lm/M" + std::to_string(Idx) + ";->f";
  M.Code.push_back(movz(5, Imm));
  for (std::size_t I = 0; I < TailAdds; ++I)
    M.Code.push_back(addReg(1, 1, 5));
  M.Code.push_back(retInsn());
  M.Side.TerminatorOffsets.push_back(
      static_cast<uint32_t>(M.Code.size() - 1) * 4);
  return M;
}

/// The small closed-world workload shared by the pipeline tests.
workload::AppSpec closedWorldSpec(const char *Name, uint64_t Seed) {
  workload::AppSpec S;
  S.Name = Name;
  S.Seed = Seed;
  S.NumEntries = 6;
  S.NumWorkers = 60;
  S.NumUtilities = 30;
  workload::enableDeadCode(S);
  return S;
}

core::CalibroOptions pipelineOpts() {
  core::CalibroOptions O;
  O.EnableCto = true;
  O.EnableLtbo = true;
  O.VerifyOutput = true;
  return O;
}

//===----------------------------------------------------------------------===//
// Call-graph construction
//===----------------------------------------------------------------------===//

TEST(CallGraphBuild, StaticEdgesAndEntrypoints) {
  dex::App A = appOf({caller(0, "La/E;->run", {1, 2}),
                      caller(1, "La/W;->w", {2}),
                      caller(2, "La/U;->u", {}),
                      caller(3, "La/D;->d", {2})},
                     {0, 0, 3}); // Duplicate entrypoint must collapse.
  auto G = buildCallGraph(A);
  ASSERT_TRUE(bool(G));
  EXPECT_EQ(G->NumMethods, 4u);
  EXPECT_EQ(G->Entrypoints, (std::vector<uint32_t>{0, 3}));
  EXPECT_EQ(G->Succ[0], (std::vector<uint32_t>{1, 2}));
  EXPECT_EQ(G->Succ[1], (std::vector<uint32_t>{2}));
  EXPECT_TRUE(G->Succ[2].empty());
  EXPECT_TRUE(G->Anomalies.empty());
  EXPECT_EQ(G->numEdges(), 4u);
}

TEST(CallGraphBuild, VirtualFanOutOverHierarchy) {
  // 0 virtually invokes La/Base;->m (idx 1); La/Sub; and La/SubSub;
  // override m. CHA closure must add edges to every override, but not to
  // the unrelated class's same-selector method.
  dex::App A = appOf({caller(0, "La/E;->run", {}, {1}),
                      caller(1, "La/Base;->m", {}),
                      caller(2, "La/Sub;->m", {}),
                      caller(3, "La/SubSub;->m", {}),
                      caller(4, "Lb/Other;->m", {})},
                     {0},
                     {{"La/Sub;", "La/Base;"}, {"La/SubSub;", "La/Sub;"}});
  auto G = buildCallGraph(A);
  ASSERT_TRUE(bool(G));
  EXPECT_EQ(G->Succ[0], (std::vector<uint32_t>{1, 2, 3}));
}

TEST(CallGraphBuild, HierarchyCycleTerminates) {
  // A (bogus) subtype cycle must not hang the closure walk.
  dex::App A = appOf({caller(0, "La/X;->run", {}, {1}),
                      caller(1, "La/Y;->run", {})},
                     {0}, {{"La/X;", "La/Y;"}, {"La/Y;", "La/X;"}});
  auto G = buildCallGraph(A);
  ASSERT_TRUE(bool(G));
  EXPECT_EQ(G->Succ[0], (std::vector<uint32_t>{0, 1}));
}

TEST(CallGraphBuild, LenientRecordsAnomalies) {
  dex::App A = appOf({caller(0, "La/E;->run", {9}), // Callee out of bounds.
                      caller(1, "garbage-name", {})},
                     {0, 7}); // Entrypoint out of bounds.
  auto G = buildCallGraph(A);
  ASSERT_TRUE(bool(G));
  EXPECT_EQ(G->Entrypoints, (std::vector<uint32_t>{0}));
  ASSERT_EQ(G->Anomalies.size(), 3u);
  std::vector<AnomalyKind> Kinds;
  for (const auto &An : G->Anomalies)
    Kinds.push_back(An.Kind);
  EXPECT_NE(std::find(Kinds.begin(), Kinds.end(),
                      AnomalyKind::UnparseableName),
            Kinds.end());
  EXPECT_NE(std::find(Kinds.begin(), Kinds.end(),
                      AnomalyKind::EntrypointOutOfBounds),
            Kinds.end());
  EXPECT_NE(std::find(Kinds.begin(), Kinds.end(),
                      AnomalyKind::CalleeOutOfBounds),
            Kinds.end());
}

TEST(CallGraphBuild, StrictModeFailsOnAnomaly) {
  dex::App Bad = appOf({caller(0, "La/E;->run", {})}, {5});
  CallGraphOptions Strict;
  Strict.Strict = true;
  EXPECT_FALSE(bool(buildCallGraph(Bad, Strict)));

  dex::App BadCallee = appOf({caller(0, "La/E;->run", {3})}, {0});
  EXPECT_FALSE(bool(buildCallGraph(BadCallee, Strict)));
}

TEST(CallGraphBuild, EdgeInsertAndDrop) {
  CallGraph G;
  G.NumMethods = 3;
  G.Present.assign(3, 1);
  G.Succ.assign(3, {});
  EXPECT_TRUE(G.addEdge(0, 2));
  EXPECT_TRUE(G.addEdge(0, 1));
  EXPECT_FALSE(G.addEdge(0, 1));      // Duplicate.
  EXPECT_FALSE(G.addEdge(0, 3));      // Out of bounds.
  EXPECT_EQ(G.Succ[0], (std::vector<uint32_t>{1, 2}));
  EXPECT_TRUE(G.dropEdge(0, 1));
  EXPECT_FALSE(G.dropEdge(0, 1));     // Already gone.
  EXPECT_EQ(G.Succ[0], (std::vector<uint32_t>{2}));
}

//===----------------------------------------------------------------------===//
// Reachability
//===----------------------------------------------------------------------===//

TEST(Reachability, UnreachableIslandIsDead) {
  // 0 -> 1 -> 2 live; 3 <-> 4 a dead cycle (cycles must not resurrect).
  dex::App A = appOf({caller(0, "La/E;->run", {1}),
                      caller(1, "La/W;->w", {2}),
                      caller(2, "La/U;->u", {}),
                      caller(3, "La/Z0;->z", {4}),
                      caller(4, "La/Z1;->z", {3})},
                     {0});
  auto G = buildCallGraph(A);
  ASSERT_TRUE(bool(G));
  Reachability R = computeReachability(*G);
  EXPECT_EQ(R.LiveCount, 3u);
  EXPECT_EQ(R.Dead, (std::vector<uint32_t>{3, 4}));
  EXPECT_TRUE(R.Live[0] && R.Live[1] && R.Live[2]);
  EXPECT_FALSE(R.Live[3] || R.Live[4]);
}

TEST(Reachability, DeadToLiveEdgeKeepsTargetLive) {
  // 1 is called both from the live root and from dead 2; it stays live,
  // 2 stays dead (a dead caller must not drag its callees down, nor be
  // resurrected by them).
  dex::App A = appOf({caller(0, "La/E;->run", {1}),
                      caller(1, "La/U;->u", {}),
                      caller(2, "La/Z;->z", {1})},
                     {0});
  auto G = buildCallGraph(A);
  ASSERT_TRUE(bool(G));
  Reachability R = computeReachability(*G);
  EXPECT_TRUE(R.Live[0] && R.Live[1]);
  EXPECT_FALSE(R.Live[2]);
  EXPECT_EQ(R.Dead, (std::vector<uint32_t>{2}));
}

TEST(Reachability, ForgedEntrypointOnlyGrowsLiveSet) {
  dex::App A = appOf({caller(0, "La/E;->run", {1}),
                      caller(1, "La/W;->w", {}),
                      caller(2, "La/Z;->z", {3}),
                      caller(3, "La/Z2;->z", {})},
                     {0});
  auto G = buildCallGraph(A);
  ASSERT_TRUE(bool(G));
  Reachability Before = computeReachability(*G);

  CallGraph Forged = *G;
  Forged.Entrypoints.insert(
      std::lower_bound(Forged.Entrypoints.begin(), Forged.Entrypoints.end(),
                       2u),
      2u);
  Reachability After = computeReachability(Forged);
  for (uint32_t I = 0; I < G->NumMethods; ++I)
    EXPECT_LE(Before.Live[I], After.Live[I]) << "method " << I;
  EXPECT_GT(After.LiveCount, Before.LiveCount);
}

TEST(Reachability, NoEntrypointsMeansNothingLive) {
  dex::App A = appOf({caller(0, "La/E;->run", {})}, {});
  auto G = buildCallGraph(A);
  ASSERT_TRUE(bool(G));
  Reachability R = computeReachability(*G);
  EXPECT_EQ(R.LiveCount, 0u);
  EXPECT_EQ(R.Dead, (std::vector<uint32_t>{0}));
}

//===----------------------------------------------------------------------===//
// Merge planning
//===----------------------------------------------------------------------===//

TEST(MergePlan, IdenticalBodiesAlias) {
  std::vector<codegen::CompiledMethod> Ms = {body(10, 7), body(11, 7),
                                             body(12, 7)};
  MergePlan P = planMerge(Ms);
  ASSERT_EQ(P.Aliases.size(), 2u);
  EXPECT_EQ(P.Aliases[0].MethodIdx, 11u);
  EXPECT_EQ(P.Aliases[0].CanonMethodIdx, 10u);
  EXPECT_EQ(P.Aliases[1].MethodIdx, 12u);
  EXPECT_EQ(P.Aliases[1].CanonMethodIdx, 10u);
  EXPECT_TRUE(P.Thunks.empty());
  EXPECT_EQ(P.SavedBytes, 2 * Ms[0].codeSizeBytes());
}

TEST(MergePlan, MovImmVariantBecomesThunk) {
  std::vector<codegen::CompiledMethod> Ms = {body(10, 7), body(11, 9)};
  MergePlan P = planMerge(Ms);
  EXPECT_TRUE(P.Aliases.empty());
  ASSERT_EQ(P.Thunks.size(), 1u);
  EXPECT_EQ(P.Thunks[0].MethodIdx, 11u);
  EXPECT_EQ(P.Thunks[0].CanonMethodIdx, 10u);
  // The movz is word 0, so the thunk keeps [0,1) and enters at byte 4.
  EXPECT_EQ(P.Thunks[0].EntryByteOff, 4u);
  EXPECT_EQ(P.Pinned, (std::vector<uint32_t>{10, 11}));
  // Saved: tail words minus the branch word.
  uint32_t N = static_cast<uint32_t>(Ms[0].Code.size());
  EXPECT_EQ(P.SavedBytes, uint64_t(N - 2) * 4);
}

TEST(MergePlan, AliasCanonStillServesAsThunkCanonical) {
  // Family {10 canon, 11 identical, 12 mov-imm variant}: the alias tier
  // consumes 11, but 10 must remain available as 12's thunk canonical.
  std::vector<codegen::CompiledMethod> Ms = {body(10, 7), body(11, 7),
                                             body(12, 9)};
  MergePlan P = planMerge(Ms);
  ASSERT_EQ(P.Aliases.size(), 1u);
  EXPECT_EQ(P.Aliases[0].MethodIdx, 11u);
  ASSERT_EQ(P.Thunks.size(), 1u);
  EXPECT_EQ(P.Thunks[0].MethodIdx, 12u);
  EXPECT_EQ(P.Thunks[0].CanonMethodIdx, 10u);
}

TEST(MergePlan, AliasCanonNeverBecomesThunkVariant) {
  // {5, 6} identical pair at imm 9; {1} a lone variant at imm 7 with the
  // lowest index, so it leads the shape bucket. 5 (the alias canon) must
  // not be rewritten into a thunk — its alias 6 shares the full body.
  std::vector<codegen::CompiledMethod> Ms = {body(5, 9), body(6, 9),
                                             body(1, 7)};
  MergePlan P = planMerge(Ms);
  ASSERT_EQ(P.Aliases.size(), 1u);
  EXPECT_EQ(P.Aliases[0].MethodIdx, 6u);
  EXPECT_EQ(P.Aliases[0].CanonMethodIdx, 5u);
  for (const MergeThunk &T : P.Thunks)
    EXPECT_NE(T.MethodIdx, 5u);
}

TEST(MergePlan, RejectsIllegalThunks) {
  // Different non-mov word: no merge of any kind.
  {
    codegen::CompiledMethod A = body(10, 7), B = body(11, 7);
    B.Code[2] = addReg(2, 2, 5);
    MergePlan P = planMerge({A, B});
    EXPECT_TRUE(P.Aliases.empty());
    EXPECT_TRUE(P.Thunks.empty());
  }
  // Mov to a different register: not a thunk pair.
  {
    codegen::CompiledMethod A = body(10, 7), B = body(11, 7);
    B.Code[0] = movz(6, 7);
    MergePlan P = planMerge({A, B});
    EXPECT_TRUE(P.Thunks.empty());
  }
  // Tail too short to pay for the branch word (MinTailWords).
  {
    codegen::CompiledMethod A = body(10, 7, /*TailAdds=*/1);
    codegen::CompiledMethod B = body(11, 9, /*TailAdds=*/1);
    MergePlan P = planMerge({A, B}); // Tail = add + ret = 2 words, cut at
    EXPECT_TRUE(P.Thunks.empty());  // word 1: N-(D+1) = 1 < MinTailWords.
  }
  // Thunks disabled by option.
  {
    MergeOptions NoThunks;
    NoThunks.EnableThunks = false;
    MergePlan P = planMerge({body(10, 7), body(11, 9)}, NoThunks);
    EXPECT_TRUE(P.Thunks.empty());
  }
  // Native methods never participate.
  {
    codegen::CompiledMethod A = body(10, 7), B = body(11, 7);
    A.Side.IsNative = B.Side.IsNative = true;
    MergePlan P = planMerge({A, B});
    EXPECT_TRUE(P.Aliases.empty());
  }
}

TEST(MergePlan, MakeThunkShape) {
  codegen::CompiledMethod M = body(11, 9);
  std::size_t FullWords = M.Code.size();
  makeThunk(M, /*DWords=*/1, /*ThunkTableIdx=*/3);
  ASSERT_EQ(M.Code.size(), 2u); // Prefix word + branch.
  EXPECT_EQ(M.Code[0], movz(5, 9));
  ASSERT_EQ(M.Relocs.size(), 1u);
  EXPECT_EQ(M.Relocs[0].Offset, 4u);
  EXPECT_EQ(M.Relocs[0].Kind, codegen::RelocKind::MergedBody);
  EXPECT_EQ(M.Relocs[0].TargetId, 3u);
  // The old terminator (beyond the cut) is trimmed; the branch is the new
  // terminator.
  EXPECT_EQ(M.Side.TerminatorOffsets, (std::vector<uint32_t>{4}));
  EXPECT_LT(M.Code.size(), FullWords);
}

//===----------------------------------------------------------------------===//
// Pipeline properties
//===----------------------------------------------------------------------===//

TEST(AnalysisPipeline, GcAndMergeShrinkTheImage) {
  workload::AppSpec Spec = closedWorldSpec("gcmerge", 1201);
  dex::App App = workload::makeApp(Spec);

  core::CalibroOptions On = pipelineOpts();
  auto Full = core::buildApp(App, On);
  ASSERT_TRUE(bool(Full)) << Full.message();

  core::CalibroOptions Off = pipelineOpts();
  Off.EnableGc = Off.EnableMerge = false;
  auto Plain = core::buildApp(App, Off);
  ASSERT_TRUE(bool(Plain)) << Plain.message();

  EXPECT_GT(Full->Stats.Ltbo.MethodsGCed.size(), 0u);
  EXPECT_GT(Full->Stats.Ltbo.GcBytes, 0u);
  EXPECT_GT(Full->Stats.Ltbo.MethodsMergedIdentical, 0u);
  EXPECT_GT(Full->Stats.Ltbo.MethodsMergedThunk, 0u);
  EXPECT_LT(Full->Oat.textBytes(), Plain->Oat.textBytes());
  EXPECT_LT(Full->Oat.Methods.size(), Plain->Oat.Methods.size());
}

TEST(AnalysisPipeline, DeterministicAcrossThreadCounts) {
  workload::AppSpec Spec = closedWorldSpec("gcdet", 515);
  dex::App App = workload::makeApp(Spec);

  std::vector<uint8_t> FirstBytes;
  std::vector<uint32_t> FirstGCed;
  for (uint32_t T : {1u, 4u, 8u}) {
    core::CalibroOptions O = pipelineOpts();
    O.CompileThreads = T;
    O.LtboThreads = T;
    O.LtboPartitions = 4;
    auto B = core::buildApp(App, O);
    ASSERT_TRUE(bool(B)) << B.message();
    std::vector<uint8_t> Bytes = oat::serializeOat(B->Oat);
    if (FirstBytes.empty()) {
      FirstBytes = std::move(Bytes);
      FirstGCed = B->Stats.Ltbo.MethodsGCed;
      EXPECT_FALSE(FirstGCed.empty());
    } else {
      EXPECT_EQ(Bytes, FirstBytes) << "threads=" << T;
      EXPECT_EQ(B->Stats.Ltbo.MethodsGCed, FirstGCed) << "threads=" << T;
    }
  }
}

TEST(AnalysisPipeline, ZeroDeadClosedWorldIsByteIdenticalNoOp) {
  // A closed world where everything is rooted: the GC must be a perfect
  // no-op — byte-identical output, nothing collected.
  workload::AppSpec Spec;
  Spec.Name = "alive";
  Spec.Seed = 77;
  Spec.NumEntries = 6;
  Spec.NumWorkers = 60;
  Spec.NumUtilities = 30;
  Spec.ClosedWorld = true;
  Spec.KeepFraction = 1.0;
  Spec.NumDeadMethods = 0;
  Spec.CloneFamilies = 0;
  dex::App App = workload::makeApp(Spec);

  core::CalibroOptions GcOnly = pipelineOpts();
  GcOnly.EnableMerge = false;
  auto WithGc = core::buildApp(App, GcOnly);
  ASSERT_TRUE(bool(WithGc)) << WithGc.message();

  core::CalibroOptions Neither = pipelineOpts();
  Neither.EnableGc = Neither.EnableMerge = false;
  auto Without = core::buildApp(App, Neither);
  ASSERT_TRUE(bool(Without)) << Without.message();

  EXPECT_TRUE(WithGc->Stats.Ltbo.MethodsGCed.empty());
  EXPECT_EQ(oat::serializeOat(WithGc->Oat), oat::serializeOat(Without->Oat));
}

TEST(AnalysisPipeline, MergePreservesObservableBehavior) {
  // Differential run: merge-on and merge-off builds must return identical
  // values for every scripted invocation, while merge-on is smaller.
  workload::AppSpec Spec = closedWorldSpec("mergediff", 2024);
  dex::App App = workload::makeApp(Spec);
  auto Script = workload::makeScript(Spec, 40, 7);

  core::CalibroOptions On = pipelineOpts();
  auto A = core::buildApp(App, On);
  ASSERT_TRUE(bool(A)) << A.message();

  core::CalibroOptions Off = pipelineOpts();
  Off.EnableMerge = false;
  auto B = core::buildApp(App, Off);
  ASSERT_TRUE(bool(B)) << B.message();

  ASSERT_GT(A->Stats.Ltbo.MethodsMergedIdentical +
                A->Stats.Ltbo.MethodsMergedThunk,
            0u);
  EXPECT_LT(A->Oat.textBytes(), B->Oat.textBytes());

  sim::Simulator SimA(A->Oat, {});
  sim::Simulator SimB(B->Oat, {});
  for (const auto &Inv : Script) {
    auto RA = SimA.call(Inv.MethodIdx, Inv.Args);
    auto RB = SimB.call(Inv.MethodIdx, Inv.Args);
    ASSERT_TRUE(bool(RA)) << RA.message();
    ASSERT_TRUE(bool(RB)) << RB.message();
    EXPECT_EQ(RA->ReturnValue, RB->ReturnValue)
        << "method " << Inv.MethodIdx;
  }
}

TEST(AnalysisPipeline, MergedEntriesSurviveSerializationRoundTrip) {
  workload::AppSpec Spec = closedWorldSpec("mergeser", 909);
  dex::App App = workload::makeApp(Spec);
  auto B = core::buildApp(App, pipelineOpts());
  ASSERT_TRUE(bool(B)) << B.message();

  std::size_t Merged = 0;
  for (const auto &M : B->Oat.Methods)
    if (M.MergedInto != oat::NoMergeParent)
      ++Merged;
  ASSERT_GT(Merged, 0u);

  auto Round = oat::deserializeOat(oat::serializeOat(B->Oat));
  ASSERT_TRUE(bool(Round)) << Round.message();
  ASSERT_EQ(Round->Methods.size(), B->Oat.Methods.size());
  for (std::size_t I = 0; I < Round->Methods.size(); ++I) {
    EXPECT_EQ(Round->Methods[I].MergedInto, B->Oat.Methods[I].MergedInto);
    EXPECT_EQ(Round->Methods[I].MergedEntryOff,
              B->Oat.Methods[I].MergedEntryOff);
  }
}

TEST(AnalysisPipeline, StrictGcAcceptsCleanBuild) {
  workload::AppSpec Spec = closedWorldSpec("gcstrictok", 404);
  dex::App App = workload::makeApp(Spec);
  core::CalibroOptions O = pipelineOpts();
  O.StrictCallGraph = true;
  auto B = core::buildApp(App, O);
  ASSERT_TRUE(bool(B)) << B.message();
  EXPECT_EQ(B->Stats.Ltbo.CallGraphAnomalies, 0u);
}

} // namespace
