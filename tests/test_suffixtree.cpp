//===- tests/test_suffixtree.cpp - Suffix tree property tests --------------===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//

#include "suffixtree/SuffixTree.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

using namespace calibro;
using namespace calibro::st;

namespace {

std::vector<Symbol> fromString(const char *S) {
  std::vector<Symbol> V;
  for (const char *P = S; *P; ++P)
    V.push_back(static_cast<Symbol>(*P));
  return V;
}

/// Naive O(n^3) reference: all repeated substrings of length >= MinLen with
/// their occurrence positions.
std::map<std::vector<Symbol>, std::vector<uint32_t>>
naiveRepeats(const std::vector<Symbol> &T, uint32_t MinLen, uint32_t MaxLen) {
  std::map<std::vector<Symbol>, std::vector<uint32_t>> Out;
  for (std::size_t Len = MinLen; Len <= MaxLen && Len <= T.size(); ++Len) {
    std::map<std::vector<Symbol>, std::vector<uint32_t>> ByKey;
    for (std::size_t P = 0; P + Len <= T.size(); ++P) {
      std::vector<Symbol> Key(T.begin() + P, T.begin() + P + Len);
      ByKey[Key].push_back(static_cast<uint32_t>(P));
    }
    for (auto &[Key, Positions] : ByKey)
      if (Positions.size() >= 2)
        Out.emplace(Key, Positions);
  }
  return Out;
}

TEST(SuffixTree, Banana) {
  // The paper's §2.1.2 example: "banana" has repeats "a" (x3), "an"/"ana"
  // (x2), "n"/"na" (x2).
  SuffixTree T(fromString("banana"));
  EXPECT_EQ(T.textSize(), 6u);

  std::map<std::vector<Symbol>, uint32_t> Found;
  T.forEachRepeat(1, 100, 2, [&](const SuffixTree::RepeatInfo &R) {
    auto Pos = T.positionsOf(R.Node);
    EXPECT_EQ(Pos.size(), R.Count);
    std::vector<Symbol> Key(T.text().begin() + Pos[0],
                            T.text().begin() + Pos[0] + R.Length);
    Found[Key] = R.Count;
  });

  EXPECT_EQ(Found[fromString("a")], 3u);
  EXPECT_EQ(Found[fromString("ana")], 2u);
  EXPECT_EQ(Found[fromString("na")], 2u);
  // "an" is not maximal (every "an" extends to "ana"), so it appears as a
  // node only if the tree splits there; the maximal-node enumeration need
  // not report it. "ana"'s occurrences overlap, which is fine here: the
  // non-overlap rule is applied by the outliner, not the tree.
}

TEST(SuffixTree, NoRepeatsInUniqueText) {
  std::vector<Symbol> T;
  for (uint32_t I = 0; I < 100; ++I)
    T.push_back(SeparatorBase + I);
  SuffixTree Tree(std::move(T));
  std::size_t Count = 0;
  Tree.forEachRepeat(1, 100, 2,
                     [&](const SuffixTree::RepeatInfo &) { ++Count; });
  EXPECT_EQ(Count, 0u);
}

TEST(SuffixTree, SeparatorsConfineRepeats) {
  // "abc | abc" with a unique separator: "abc" repeats, nothing longer.
  std::vector<Symbol> T = {'a', 'b', 'c', SeparatorBase, 'a', 'b', 'c'};
  SuffixTree Tree(std::move(T));
  uint32_t MaxLen = 0;
  Tree.forEachRepeat(1, 100, 2, [&](const SuffixTree::RepeatInfo &R) {
    MaxLen = std::max(MaxLen, R.Length);
  });
  EXPECT_EQ(MaxLen, 3u);
}

class SuffixTreeRandom : public ::testing::TestWithParam<uint64_t> {};

/// Property: every maximal node the tree reports is a genuine repeat with
/// exactly the naive finder's positions; and every naive repeat is covered
/// by some reported node (at node granularity: for each repeated substring
/// S, the tree has a node whose string has S as a prefix and whose
/// positions equal S's).
TEST_P(SuffixTreeRandom, MatchesNaiveFinder) {
  Rng R(GetParam());
  for (int Round = 0; Round < 20; ++Round) {
    std::size_t N = 30 + R.nextBelow(120);
    unsigned Alphabet = 2 + static_cast<unsigned>(R.nextBelow(5));
    std::vector<Symbol> T;
    for (std::size_t I = 0; I < N; ++I)
      T.push_back('a' + R.nextBelow(Alphabet));

    auto Naive = naiveRepeats(T, 1, static_cast<uint32_t>(N));
    std::vector<Symbol> Copy = T;
    SuffixTree Tree(std::move(Copy));

    std::map<std::vector<Symbol>, std::vector<uint32_t>> FromTree;
    Tree.forEachRepeat(1, static_cast<uint32_t>(N), 2,
                       [&](const SuffixTree::RepeatInfo &Rep) {
                         auto Pos = Tree.positionsOf(Rep.Node);
                         std::vector<Symbol> Key(T.begin() + Pos[0],
                                                 T.begin() + Pos[0] +
                                                     Rep.Length);
                         FromTree[Key] = Pos;
                       });

    // Soundness: each reported node is a naive repeat with equal positions.
    for (const auto &[Key, Pos] : FromTree) {
      auto It = Naive.find(Key);
      ASSERT_NE(It, Naive.end()) << "tree reported a non-repeat";
      EXPECT_EQ(It->second, Pos);
    }
    // Completeness at node granularity: every naive repeat's position set
    // is reported by the node it corresponds to (its shortest maximal
    // extension).
    for (const auto &[Key, Pos] : Naive) {
      bool Covered = false;
      for (const auto &[TKey, TPos] : FromTree) {
        if (TKey.size() >= Key.size() &&
            std::equal(Key.begin(), Key.end(), TKey.begin()) &&
            TPos == Pos) {
          Covered = true;
          break;
        }
      }
      EXPECT_TRUE(Covered) << "naive repeat not covered by any node";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SuffixTreeRandom,
                         ::testing::Values(7, 99, 1234, 0xabcdef, 31337));

TEST(SuffixTree, LargePeriodicText) {
  // Heavily periodic input stresses Ukkonen's implicit-extension path.
  std::vector<Symbol> T;
  for (int I = 0; I < 5000; ++I)
    T.push_back('a' + (I % 3));
  SuffixTree Tree(std::move(T));
  // "abcabc...": the length-3 repeat "abc" occurs floor(n/3)-ish times
  // (overlapping suffix positions).
  bool FoundLong = false;
  Tree.forEachRepeat(100, 200, 2, [&](const SuffixTree::RepeatInfo &R) {
    FoundLong |= R.Length >= 100 && R.Count >= 2;
  });
  EXPECT_TRUE(FoundLong);
  EXPECT_GT(Tree.numNodes(), 5000u);
}

TEST(SuffixTree, PositionsSorted) {
  std::vector<Symbol> T = fromString("xyxyxyxyxy");
  SuffixTree Tree(std::move(T));
  Tree.forEachRepeat(1, 10, 2, [&](const SuffixTree::RepeatInfo &R) {
    auto Pos = Tree.positionsOf(R.Node);
    EXPECT_TRUE(std::is_sorted(Pos.begin(), Pos.end()));
    EXPECT_EQ(Pos.size(), R.Count);
  });
}

} // namespace

//===----------------------------------------------------------------------===//
// SuffixArray cross-validation
//===----------------------------------------------------------------------===//

#include "suffixtree/SuffixArray.h"

namespace {

/// The two backends must report the same repeats (keyed by substring) with
/// the same occurrence sets: LCP intervals are exactly the suffix tree's
/// internal nodes.
class BackendEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BackendEquivalence, TreeAndArrayAgree) {
  Rng R(GetParam());
  for (int Round = 0; Round < 15; ++Round) {
    std::size_t N = 40 + R.nextBelow(200);
    unsigned Alphabet = 2 + static_cast<unsigned>(R.nextBelow(6));
    std::vector<Symbol> T;
    for (std::size_t I = 0; I < N; ++I) {
      if (R.nextBool(0.05))
        T.push_back(SeparatorBase + I); // Unique separators, like LTBO.
      else
        T.push_back('a' + R.nextBelow(Alphabet));
    }

    std::vector<Symbol> C1 = T, C2 = T;
    SuffixTree Tree(std::move(C1));
    SuffixArray Array(std::move(C2));

    using Key = std::vector<Symbol>;
    std::map<Key, std::vector<uint32_t>> FromTree, FromArray;
    Tree.forEachRepeat(1, static_cast<uint32_t>(N), 2,
                       [&](const SuffixTree::RepeatInfo &Rep) {
                         auto Pos = Tree.positionsOf(Rep.Node);
                         Key K(T.begin() + Pos[0],
                               T.begin() + Pos[0] + Rep.Length);
                         FromTree[K] = Pos;
                       });
    Array.forEachRepeat(1, static_cast<uint32_t>(N), 2,
                        [&](const SuffixArray::RepeatInfo &Rep) {
                          auto Pos = Array.positionsOf(Rep.Node);
                          Key K(T.begin() + Pos[0],
                                T.begin() + Pos[0] + Rep.Length);
                          FromArray[K] = Pos;
                        });
    EXPECT_EQ(FromTree, FromArray) << "backends diverged (N=" << N << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BackendEquivalence,
                         ::testing::Values(3, 17, 2718, 31415));

/// Clamped-candidate dedup property, checked against the naive finder:
///  - no content (the length-R.Length prefix at the reported positions) is
///    reported twice — deep nodes collapse onto the shallowest node of
///    depth >= MaxLen on their root path;
///  - every clamped report carries the FULL occurrence set of its
///    length-MaxLen content (the deeper duplicates it replaced only held
///    subsets);
///  - every distinct length-MaxLen repeat is still reported (dedup loses
///    no candidate).
template <typename DetectorT>
void checkClampedDedup(const std::vector<Symbol> &T, uint32_t MaxLen) {
  std::vector<Symbol> Copy = T;
  DetectorT D(std::move(Copy));
  auto Naive = naiveRepeats(T, MaxLen, MaxLen);
  std::map<std::vector<Symbol>, std::vector<uint32_t>> Reported;
  D.forEachRepeat(1, MaxLen, 2,
                  [&](const typename DetectorT::RepeatInfo &R) {
                    ASSERT_LE(R.Length, MaxLen);
                    auto Pos = D.positionsOf(R.Node);
                    std::vector<Symbol> Key(T.begin() + Pos[0],
                                            T.begin() + Pos[0] + R.Length);
                    auto [It, Inserted] = Reported.emplace(Key, Pos);
                    EXPECT_TRUE(Inserted)
                        << "content reported twice (len " << R.Length << ")";
                    if (R.Length == MaxLen) {
                      auto NIt = Naive.find(Key);
                      ASSERT_NE(NIt, Naive.end()) << "reported a non-repeat";
                      EXPECT_EQ(NIt->second, Pos)
                          << "clamped report lost occurrences";
                    }
                  });
  for (const auto &[Key, Pos] : Naive) {
    auto It = Reported.find(Key);
    ASSERT_NE(It, Reported.end()) << "length-MaxLen repeat not reported";
    EXPECT_EQ(It->second, Pos);
  }
}

std::vector<Symbol> periodicText(std::size_t Period, std::size_t Len) {
  std::vector<Symbol> T;
  for (std::size_t I = 0; I < Len; ++I)
    T.push_back('a' + static_cast<Symbol>(I % Period));
  return T;
}

TEST(ClampedDedup, PeriodicTextTree) {
  // "ababab...": the worst case — one deep chain of nodes, all clamping to
  // the same two length-5 contents ("ababa"/"babab").
  checkClampedDedup<SuffixTree>(periodicText(2, 80), 5);
  checkClampedDedup<SuffixTree>(periodicText(3, 90), 7);
}

TEST(ClampedDedup, PeriodicTextArray) {
  checkClampedDedup<SuffixArray>(periodicText(2, 80), 5);
  checkClampedDedup<SuffixArray>(periodicText(3, 90), 7);
}

TEST(ClampedDedup, RandomTextsBothBackendsAgree) {
  Rng R(0xc0ffee);
  for (int Round = 0; Round < 20; ++Round) {
    std::size_t N = 60 + R.nextBelow(120);
    unsigned Alphabet = 2 + static_cast<unsigned>(R.nextBelow(3));
    uint32_t MaxLen = 3 + static_cast<uint32_t>(R.nextBelow(6));
    std::vector<Symbol> T;
    for (std::size_t I = 0; I < N; ++I)
      T.push_back('a' + R.nextBelow(Alphabet));
    checkClampedDedup<SuffixTree>(T, MaxLen);
    checkClampedDedup<SuffixArray>(T, MaxLen);

    // Under clamping the two backends must still report identical
    // (content -> positions) maps.
    std::vector<Symbol> C1 = T, C2 = T;
    SuffixTree Tree(std::move(C1));
    SuffixArray Array(std::move(C2));
    std::map<std::vector<Symbol>, std::vector<uint32_t>> FromTree, FromArray;
    Tree.forEachRepeat(1, MaxLen, 2, [&](const SuffixTree::RepeatInfo &Rep) {
      auto Pos = Tree.positionsOf(Rep.Node);
      FromTree[{T.begin() + Pos[0], T.begin() + Pos[0] + Rep.Length}] = Pos;
    });
    Array.forEachRepeat(1, MaxLen, 2,
                        [&](const SuffixArray::RepeatInfo &Rep) {
                          auto Pos = Array.positionsOf(Rep.Node);
                          FromArray[{T.begin() + Pos[0],
                                     T.begin() + Pos[0] + Rep.Length}] = Pos;
                        });
    EXPECT_EQ(FromTree, FromArray)
        << "backends diverged under clamping (N=" << N << ")";
  }
}

//===----------------------------------------------------------------------===//
// SA-IS vs prefix doubling: construction differential
//===----------------------------------------------------------------------===//

// The SA of a text with a unique smallest (virtual) sentinel is unique, so
// SA-IS and the retained prefix-doubling oracle must agree ELEMENT FOR
// ELEMENT — not merely produce equivalent repeat sets.
void checkSaIsMatchesDoubling(const std::vector<Symbol> &T) {
  SuffixArray A{std::vector<Symbol>(T)};
  std::vector<uint32_t> Oracle = prefixDoublingSuffixArray(T);
  auto Got = A.suffixArray();
  ASSERT_EQ(Got.size(), Oracle.size()) << "n=" << T.size();
  ASSERT_EQ(Got.size(), T.size() + 1);
  EXPECT_EQ(Got.front(), static_cast<uint32_t>(T.size()))
      << "sentinel suffix must sort first";
  for (std::size_t I = 0; I < Oracle.size(); ++I)
    ASSERT_EQ(Got[I], Oracle[I]) << "row " << I << " (n=" << T.size() << ")";
}

TEST(SaIsDifferential, EdgeShapes) {
  checkSaIsMatchesDoubling({});                  // Empty text.
  checkSaIsMatchesDoubling({42});                // Single symbol.
  checkSaIsMatchesDoubling(fromString("aaaaaaaaaaaaaaaa")); // All equal.
  checkSaIsMatchesDoubling(fromString("ab"));
  checkSaIsMatchesDoubling(fromString("ba"));
  checkSaIsMatchesDoubling(fromString("banana"));
  checkSaIsMatchesDoubling(fromString("mississippi"));
  // Sparse 64-bit symbols, including values around the separator range and
  // the old reserved sentinel — all legal under the virtual sentinel.
  checkSaIsMatchesDoubling({SeparatorBase, 0, SeparatorBase + 1, 0,
                            ~uint64_t(0), 0, ~uint64_t(0)});
}

TEST(SaIsDifferential, RandomTexts) {
  Rng R(0x5a15);
  for (int Case = 0; Case < 60; ++Case) {
    std::size_t N = 1 + R.nextBelow(300);
    uint64_t Alphabet = 1 + R.nextBelow(8);
    std::vector<Symbol> T;
    T.reserve(N);
    for (std::size_t I = 0; I < N; ++I)
      T.push_back('a' + R.nextBelow(Alphabet));
    checkSaIsMatchesDoubling(T);
  }
}

//===----------------------------------------------------------------------===//
// Hybrid construction-backend auto-pick
//===----------------------------------------------------------------------===//

// The pick must be a deterministic function of the text, exercise BOTH
// backends across the expected regimes, and never change the output: the
// SA with a unique smallest sentinel is unique, so whichever backend runs
// must match the prefix-doubling oracle element for element.
TEST(SaBackendPick, SmallTextUsesPrefixDoubling) {
  // Below the symbol-count threshold SA-IS's setup cost dominates
  // (BENCH_build_time: sais_speedup 0.617 at scale 2) — even on maximally
  // repeat-heavy text the pick must stay with doubling.
  std::vector<Symbol> T(4096, 'a');
  SuffixArray A{std::vector<Symbol>(T)};
  EXPECT_EQ(A.constructionBackend(), SaBackend::PrefixDoubling);
  checkSaIsMatchesDoubling(T);
}

TEST(SaBackendPick, LargeRepeatHeavyTextUsesSaIs) {
  // Large text over a tiny alphabet: nearly every sampled bigram repeats,
  // so doubling would run deep rank-resolution rounds — SA-IS territory.
  Rng R(0xbac0);
  std::vector<Symbol> T;
  T.reserve(1 << 16);
  for (std::size_t I = 0; I < (1u << 16); ++I)
    T.push_back('a' + R.nextBelow(4));
  SuffixArray A{std::vector<Symbol>(T)};
  EXPECT_EQ(A.constructionBackend(), SaBackend::SaIs);
  checkSaIsMatchesDoubling(T);
}

TEST(SaBackendPick, LargeRepeatPoorTextUsesPrefixDoubling) {
  // Large but almost-unique symbols: ranks go unique within a couple of
  // doubling rounds, which O(n) construction cannot beat in practice.
  std::vector<Symbol> T;
  T.reserve(1 << 16);
  for (std::size_t I = 0; I < (1u << 16); ++I)
    T.push_back(0x1000 + I * 3);
  SuffixArray A{std::vector<Symbol>(T)};
  EXPECT_EQ(A.constructionBackend(), SaBackend::PrefixDoubling);
  checkSaIsMatchesDoubling(T);
}

TEST(SaBackendPick, PickIsDeterministicAndNamed) {
  Rng R(0x9e1c);
  std::vector<Symbol> T;
  for (std::size_t I = 0; I < 50000; ++I)
    T.push_back('a' + R.nextBelow(3));
  SuffixArray A{std::vector<Symbol>(T)};
  SuffixArray B{std::vector<Symbol>(T)};
  EXPECT_EQ(A.constructionBackend(), B.constructionBackend());
  EXPECT_STREQ(saBackendName(SaBackend::SaIs), "sa_is");
  EXPECT_STREQ(saBackendName(SaBackend::PrefixDoubling), "prefix_doubling");
}

TEST(SaIsDifferential, SeededRepeatTexts) {
  // Repeat-heavy inputs exercise the SA-IS recursion (many equal LMS
  // substrings force non-unique names): periodic texts, doubled random
  // blocks, and runs, with unique separators mixed in like the outliner's
  // group sequences.
  Rng R(0xd0b1);
  for (int Case = 0; Case < 30; ++Case) {
    std::vector<Symbol> Block;
    std::size_t BlockLen = 2 + R.nextBelow(12);
    for (std::size_t I = 0; I < BlockLen; ++I)
      Block.push_back('a' + R.nextBelow(3));
    std::vector<Symbol> T;
    uint64_t Sep = 0;
    std::size_t Reps = 2 + R.nextBelow(20);
    for (std::size_t K = 0; K < Reps; ++K) {
      T.insert(T.end(), Block.begin(), Block.end());
      if (R.nextBelow(3) == 0)
        T.push_back(SeparatorBase + Sep++);
    }
    checkSaIsMatchesDoubling(T);
  }
}

TEST(SaIsDifferential, ExternalArenaMatchesPrivate) {
  // Same text through a caller-supplied arena (reused and reset between
  // constructions, like the Phase B pool does) and through the private
  // arena: identical arrays, identical repeat enumeration.
  Rng R(0xae1a);
  support::Arena Scratch;
  for (int Case = 0; Case < 10; ++Case) {
    std::size_t N = 50 + R.nextBelow(200);
    std::vector<Symbol> T;
    for (std::size_t I = 0; I < N; ++I)
      T.push_back('a' + R.nextBelow(4));

    SuffixArray WithPool(std::vector<Symbol>(T), &Scratch);
    Scratch.reset(); // Construction scratch is dead the moment it returns.
    SuffixArray Private{std::vector<Symbol>(T)};
    ASSERT_EQ(WithPool.suffixArray().size(), Private.suffixArray().size());
    for (std::size_t I = 0; I < Private.suffixArray().size(); ++I)
      ASSERT_EQ(WithPool.suffixArray()[I], Private.suffixArray()[I]);
    EXPECT_EQ(WithPool.numNodes(), Private.numNodes());
    EXPECT_GT(Scratch.bytesReserved(), 0u);
  }
}

TEST(SuffixArray, FirstPositionMatchesPositions) {
  Rng R(0xf157);
  for (int Case = 0; Case < 10; ++Case) {
    std::vector<Symbol> T;
    std::size_t N = 20 + R.nextBelow(200);
    for (std::size_t I = 0; I < N; ++I)
      T.push_back('a' + R.nextBelow(4));
    std::vector<Symbol> C1 = T, C2 = T;
    SuffixTree Tree(std::move(C1));
    SuffixArray Array(std::move(C2));
    Tree.forEachRepeat(1, 64, 2, [&](const SuffixTree::RepeatInfo &Rep) {
      EXPECT_EQ(Tree.firstPositionOf(Rep.Node),
                Tree.positionsOf(Rep.Node).front());
    });
    Array.forEachRepeat(1, 64, 2, [&](const SuffixArray::RepeatInfo &Rep) {
      EXPECT_EQ(Array.firstPositionOf(Rep.Node),
                Array.positionsOf(Rep.Node).front());
    });
  }
}

TEST(SuffixArray, BananaIntervals) {
  SuffixArray A(fromString("banana"));
  std::map<std::vector<Symbol>, uint32_t> Found;
  A.forEachRepeat(1, 100, 2, [&](const SuffixArray::RepeatInfo &R) {
    auto Pos = A.positionsOf(R.Node);
    std::vector<Symbol> Key(A.text().begin() + Pos[0],
                            A.text().begin() + Pos[0] + R.Length);
    Found[Key] = R.Count;
  });
  EXPECT_EQ(Found[fromString("a")], 3u);
  EXPECT_EQ(Found[fromString("ana")], 2u);
  EXPECT_EQ(Found[fromString("na")], 2u);
}

//===----------------------------------------------------------------------===//
// View (non-owning) construction: windowed linking builds suffix structures
// over spans of caller-held text. A view-built detector must be
// indistinguishable from an owned one over the same bytes.
//===----------------------------------------------------------------------===//

template <typename DetectorT>
std::map<std::vector<Symbol>, std::vector<uint32_t>>
enumerateRepeats(DetectorT &D, const std::vector<Symbol> &T, uint32_t MaxLen) {
  std::map<std::vector<Symbol>, std::vector<uint32_t>> Out;
  D.forEachRepeat(1, MaxLen, 2,
                  [&](const typename DetectorT::RepeatInfo &R) {
                    auto Pos = D.positionsOf(R.Node);
                    Out[{T.begin() + Pos[0], T.begin() + Pos[0] + R.Length}] =
                        Pos;
                  });
  return Out;
}

template <typename DetectorT>
void checkViewMatchesOwned(const std::vector<Symbol> &T) {
  const uint32_t MaxLen = static_cast<uint32_t>(T.size()) + 1;
  DetectorT Owned{std::vector<Symbol>(T)};
  DetectorT Viewed{std::span<const Symbol>(T)};

  EXPECT_EQ(Owned.textSize(), Viewed.textSize());
  EXPECT_EQ(Owned.numNodes(), Viewed.numNodes());
  // Both modes account the text identically (the owned copy is exact-size),
  // so the whole working set matches byte for byte.
  EXPECT_EQ(Owned.workingSetBytes(), Viewed.workingSetBytes());
  EXPECT_EQ(enumerateRepeats(Owned, T, MaxLen),
            enumerateRepeats(Viewed, T, MaxLen))
      << "view diverged from owned (n=" << T.size() << ")";
}

TEST(ViewConstruction, EdgeShapes) {
  for (const char *S : {"", "x", "aaaaaaaa", "banana", "mississippi"}) {
    checkViewMatchesOwned<SuffixTree>(fromString(S));
    checkViewMatchesOwned<SuffixArray>(fromString(S));
  }
  // Symbols around the separator range and the all-ones value the tree
  // uses as its virtual sentinel: legal text, never confused with it.
  std::vector<Symbol> Hostile = {SeparatorBase, 0, ~uint64_t(0), 0,
                                 ~uint64_t(0), SeparatorBase + 1};
  checkViewMatchesOwned<SuffixTree>(Hostile);
  checkViewMatchesOwned<SuffixArray>(Hostile);
}

TEST(ViewConstruction, RandomTextsDifferential) {
  Rng R(0x71e3);
  for (int Case = 0; Case < 25; ++Case) {
    std::size_t N = 1 + R.nextBelow(250);
    unsigned Alphabet = 2 + static_cast<unsigned>(R.nextBelow(6));
    std::vector<Symbol> T;
    for (std::size_t I = 0; I < N; ++I) {
      if (R.nextBool(0.05))
        T.push_back(SeparatorBase + I);
      else
        T.push_back('a' + R.nextBelow(Alphabet));
    }
    checkViewMatchesOwned<SuffixTree>(T);
    checkViewMatchesOwned<SuffixArray>(T);
  }
}

TEST(ViewConstruction, TandemRepeatTextsDifferential) {
  // Repeat-heavy corpora (tandem blocks with occasional separators): the
  // shapes that stress deep tree chains and the SA-IS recursion.
  Rng R(0x7a2d);
  for (int Case = 0; Case < 20; ++Case) {
    std::vector<Symbol> Block;
    std::size_t BlockLen = 2 + R.nextBelow(10);
    for (std::size_t I = 0; I < BlockLen; ++I)
      Block.push_back('a' + R.nextBelow(3));
    std::vector<Symbol> T;
    uint64_t Sep = 0;
    std::size_t Reps = 3 + R.nextBelow(25);
    for (std::size_t K = 0; K < Reps; ++K) {
      T.insert(T.end(), Block.begin(), Block.end());
      if (R.nextBelow(4) == 0)
        T.push_back(SeparatorBase + Sep++);
    }
    checkViewMatchesOwned<SuffixTree>(T);
    checkViewMatchesOwned<SuffixArray>(T);
  }
}

TEST(ViewConstruction, WindowedSlicesMatchWholeCopies) {
  // The windowed pipeline's actual usage: views over sub-ranges of one big
  // caller-held buffer. Each slice's view detector must equal an owned
  // detector over a private copy of that slice.
  Rng R(0x5117);
  std::vector<Symbol> Whole;
  for (std::size_t I = 0; I < 400; ++I)
    Whole.push_back('a' + R.nextBelow(4));
  for (int Case = 0; Case < 15; ++Case) {
    std::size_t Lo = R.nextBelow(Whole.size());
    std::size_t Len = 1 + R.nextBelow(Whole.size() - Lo);
    std::span<const Symbol> Slice(Whole.data() + Lo, Len);
    std::vector<Symbol> Copy(Slice.begin(), Slice.end());
    const uint32_t MaxLen = static_cast<uint32_t>(Len) + 1;

    SuffixTree TreeView{Slice};
    SuffixTree TreeCopy{std::vector<Symbol>(Copy)};
    EXPECT_EQ(enumerateRepeats(TreeView, Copy, MaxLen),
              enumerateRepeats(TreeCopy, Copy, MaxLen));

    SuffixArray ArrView{Slice};
    SuffixArray ArrCopy{std::vector<Symbol>(Copy)};
    EXPECT_EQ(enumerateRepeats(ArrView, Copy, MaxLen),
              enumerateRepeats(ArrCopy, Copy, MaxLen));
  }
}

template <typename DetectorT>
void checkReleaseAccounting(const std::vector<Symbol> &T) {
  const std::size_t TextBytes = T.size() * sizeof(Symbol);
  DetectorT Owned{std::vector<Symbol>(T)};
  DetectorT Viewed{std::span<const Symbol>(T)};
  auto Repeats = enumerateRepeats(Owned, T, 16);

  const std::size_t Before = Owned.workingSetBytes();
  ASSERT_EQ(Before, Viewed.workingSetBytes());
  ASSERT_GE(Before, TextBytes);
  Owned.releaseWorkingSet();
  Viewed.releaseWorkingSet();
  // The text contribution returns to zero in BOTH modes — dropping a view
  // must shed exactly as many accounted bytes as freeing an owned copy.
  EXPECT_EQ(Owned.workingSetBytes(), Viewed.workingSetBytes());
  EXPECT_LE(Owned.workingSetBytes(), Before - TextBytes);
  // Enumeration survives release (it reads only the retained structure).
  EXPECT_EQ(enumerateRepeats(Viewed, T, 16), Repeats);
}

TEST(ViewConstruction, ReleaseWorkingSetAccounting) {
  Rng R(0x4e1e);
  std::vector<Symbol> T;
  for (std::size_t I = 0; I < 300; ++I)
    T.push_back('a' + R.nextBelow(3));
  checkReleaseAccounting<SuffixTree>(T);
  checkReleaseAccounting<SuffixArray>(T);
}

} // namespace
