//===- tests/test_workload.cpp - Workload generator tests -------------------===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//

#include "workload/Workload.h"

#include <gtest/gtest.h>

using namespace calibro;
using namespace calibro::workload;

namespace {

AppSpec tinySpec(uint64_t Seed) {
  AppSpec S;
  S.Name = "tiny";
  S.Seed = Seed;
  S.NumWorkers = 40;
  S.NumUtilities = 20;
  return S;
}

TEST(Workload, GeneratedAppsVerify) {
  for (uint64_t Seed : {1ull, 7ull, 42ull, 0xdeadull}) {
    dex::App A = makeApp(tinySpec(Seed));
    EXPECT_FALSE(bool(dex::verifyApp(A))) << "seed " << Seed;
  }
}

TEST(Workload, PaperAppsVerify) {
  for (const auto &Spec : paperApps(0.1)) {
    dex::App A = makeApp(Spec);
    EXPECT_FALSE(bool(dex::verifyApp(A))) << Spec.Name;
    EXPECT_EQ(A.Name, Spec.Name);
    EXPECT_EQ(A.numMethods(),
              Spec.NumEntries + Spec.NumWorkers + Spec.NumUtilities);
  }
}

TEST(Workload, DeterministicForSeed) {
  dex::App A = makeApp(tinySpec(5));
  dex::App B = makeApp(tinySpec(5));
  ASSERT_EQ(A.numMethods(), B.numMethods());
  for (std::size_t F = 0; F < A.Files.size(); ++F) {
    ASSERT_EQ(A.Files[F].Methods.size(), B.Files[F].Methods.size());
    for (std::size_t M = 0; M < A.Files[F].Methods.size(); ++M) {
      const auto &MA = A.Files[F].Methods[M];
      const auto &MB = B.Files[F].Methods[M];
      EXPECT_EQ(MA.Name, MB.Name);
      ASSERT_EQ(MA.Code.size(), MB.Code.size());
      for (std::size_t I = 0; I < MA.Code.size(); ++I) {
        EXPECT_EQ(MA.Code[I].Opcode, MB.Code[I].Opcode);
        EXPECT_EQ(MA.Code[I].Imm, MB.Code[I].Imm);
      }
    }
  }
}

TEST(Workload, DifferentSeedsDiffer) {
  dex::App A = makeApp(tinySpec(5));
  dex::App B = makeApp(tinySpec(6));
  bool AnyDiff = A.numMethods() != B.numMethods();
  if (!AnyDiff) {
    for (std::size_t F = 0; F < A.Files.size() && !AnyDiff; ++F)
      for (std::size_t M = 0;
           M < A.Files[F].Methods.size() && !AnyDiff; ++M)
        AnyDiff |= A.Files[F].Methods[M].Code.size() !=
                   B.Files[F].Methods[M].Code.size();
  }
  EXPECT_TRUE(AnyDiff);
}

TEST(Workload, ContainsExpectedMethodKinds) {
  AppSpec S = tinySpec(9);
  S.SwitchFraction = 0.5;
  S.NativeFraction = 0.5;
  dex::App A = makeApp(S);
  std::size_t Switches = 0, Natives = 0;
  A.forEachMethod([&](const dex::Method &M) {
    Natives += M.IsNative;
    Switches += !M.SwitchTables.empty();
  });
  EXPECT_GT(Switches, 0u);
  EXPECT_GT(Natives, 0u);
}

TEST(Workload, CallGraphIsLayered) {
  // Entries call workers, workers call utilities; no recursion is possible
  // because callee indices always point into a later layer.
  AppSpec S = tinySpec(11);
  dex::App A = makeApp(S);
  uint32_t WorkerLo = S.NumEntries;
  uint32_t UtilLo = S.NumEntries + S.NumWorkers;
  A.forEachMethod([&](const dex::Method &M) {
    for (const auto &I : M.Code) {
      if (I.Opcode != dex::Op::InvokeStatic &&
          I.Opcode != dex::Op::InvokeVirtual)
        continue;
      if (M.Idx < WorkerLo) {
        EXPECT_GE(I.Idx, WorkerLo);
        EXPECT_LT(I.Idx, UtilLo);
      } else if (M.Idx < UtilLo) {
        EXPECT_GE(I.Idx, UtilLo);
      } else {
        FAIL() << "utilities must not call";
      }
    }
  });
}

TEST(Workload, ScriptDeterministicAndValid) {
  AppSpec S = tinySpec(3);
  auto Script1 = makeScript(S, 50, 99);
  auto Script2 = makeScript(S, 50, 99);
  ASSERT_EQ(Script1.size(), 50u);
  for (std::size_t I = 0; I < Script1.size(); ++I) {
    EXPECT_EQ(Script1[I].MethodIdx, Script2[I].MethodIdx);
    EXPECT_EQ(Script1[I].Args, Script2[I].Args);
    EXPECT_LT(Script1[I].MethodIdx, S.NumEntries);
    EXPECT_EQ(Script1[I].Args.size(), 1u); // Entries take one argument.
  }
}

TEST(Workload, PaperAppsScaleWithTable4Sizes) {
  auto Specs = paperApps(1.0);
  ASSERT_EQ(Specs.size(), 6u);
  auto Find = [&](const char *Name) -> const AppSpec & {
    for (const auto &S : Specs)
      if (S.Name == Name)
        return S;
    static AppSpec Empty;
    return Empty;
  };
  // Kuaishou (612 MB) must be the largest, Taobao (225 MB) the smallest.
  for (const auto &S : Specs) {
    EXPECT_LE(S.NumWorkers, Find("Kuaishou").NumWorkers);
    EXPECT_GE(S.NumWorkers, Find("Taobao").NumWorkers);
  }
}

} // namespace
