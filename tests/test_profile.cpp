//===- tests/test_profile.cpp - Profile and hot-set selection tests ---------===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//

#include "profile/Profile.h"

#include <gtest/gtest.h>

using namespace calibro;
using namespace calibro::profile;

namespace {

TEST(Profile, AddAndMerge) {
  Profile P;
  P.add(1, 100);
  P.add(1, 50);
  P.add(2, 10);
  EXPECT_EQ(P.CyclesByMethod[1], 150u);
  EXPECT_EQ(P.totalCycles(), 160u);

  Profile Q;
  Q.add(2, 30);
  Q.add(3, 5);
  P.merge(Q);
  EXPECT_EQ(P.CyclesByMethod[2], 40u);
  EXPECT_EQ(P.totalCycles(), 195u);
}

TEST(HotSet, SelectsTopCoverage) {
  // 80/10/5/5 split: 80% coverage selects exactly the top method.
  Profile P;
  P.add(0, 800);
  P.add(1, 100);
  P.add(2, 50);
  P.add(3, 50);
  auto Hot = selectHotMethods(P, 0.80);
  EXPECT_EQ(Hot.size(), 1u);
  EXPECT_TRUE(Hot.count(0));

  // 90% needs the top two.
  auto Hot90 = selectHotMethods(P, 0.90);
  EXPECT_EQ(Hot90.size(), 2u);
  EXPECT_TRUE(Hot90.count(0));
  EXPECT_TRUE(Hot90.count(1));
}

TEST(HotSet, UniformDistribution) {
  Profile P;
  for (uint32_t I = 0; I < 10; ++I)
    P.add(I, 100);
  auto Hot = selectHotMethods(P, 0.80);
  EXPECT_EQ(Hot.size(), 8u);
}

TEST(HotSet, EmptyProfile) {
  Profile P;
  auto Hot = selectHotMethods(P, 0.80);
  EXPECT_TRUE(Hot.empty());
}

TEST(HotSet, FullCoverageTakesAll) {
  Profile P;
  P.add(0, 1);
  P.add(1, 1);
  auto Hot = selectHotMethods(P, 1.0);
  EXPECT_EQ(Hot.size(), 2u);
}

// The public surface is sorted on purpose: iteration order feeds the layout
// stage's affinity graph, so it must not depend on hash-table internals.
TEST(Profile, IterationIsSortedByMethodIndex) {
  Profile P;
  // Insert in a scrambled order; the map must iterate ascending.
  for (uint32_t I : {7u, 2u, 9u, 0u, 5u, 3u})
    P.add(I, 10 * (I + 1));
  uint32_t Prev = 0;
  bool First = true;
  for (const auto &[Idx, Cycles] : P.CyclesByMethod) {
    if (!First)
      EXPECT_LT(Prev, Idx);
    Prev = Idx;
    First = false;
  }

  auto Hot = selectHotMethods(P, 1.0);
  std::vector<uint32_t> Order(Hot.begin(), Hot.end());
  for (std::size_t I = 1; I < Order.size(); ++I)
    EXPECT_LT(Order[I - 1], Order[I]);
}

TEST(HotSet, DeterministicTieBreaking) {
  Profile P;
  for (uint32_t I = 0; I < 6; ++I)
    P.add(I, 10);
  auto A = selectHotMethods(P, 0.5);
  auto B = selectHotMethods(P, 0.5);
  EXPECT_EQ(A, B);
  EXPECT_EQ(A.size(), 3u);
  // Ties break toward lower method indices.
  EXPECT_TRUE(A.count(0));
  EXPECT_TRUE(A.count(1));
  EXPECT_TRUE(A.count(2));
}

} // namespace
