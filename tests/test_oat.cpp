//===- tests/test_oat.cpp - Linker and OAT validation tests -----------------===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//

#include "aarch64/Decoder.h"
#include "aarch64/Encoder.h"
#include "codegen/CodeGenerator.h"
#include "hir/HGraph.h"
#include "oat/Dump.h"
#include "oat/Linker.h"

#include <gtest/gtest.h>

using namespace calibro;
using namespace calibro::codegen;
using namespace calibro::oat;

namespace {

dex::Method callerMethod(uint32_t Idx) {
  dex::Method M;
  M.Idx = Idx;
  M.Name = "caller" + std::to_string(Idx);
  M.NumRegs = 8;
  M.NumArgs = 1;
  M.ReturnsValue = true;
  dex::Insn Alloc;
  Alloc.Opcode = dex::Op::NewInstance;
  Alloc.A = 1;
  Alloc.Idx = 3;
  dex::Insn Ret;
  Ret.Opcode = dex::Op::Return;
  Ret.A = 1;
  M.Code = {Alloc, Ret};
  return M;
}

LinkInput makeInput(bool Cto) {
  LinkInput In;
  In.AppName = "linktest";
  CtoStubCache Cache;
  CodeGenerator Gen({.EnableCto = Cto}, Cache);
  for (uint32_t I = 0; I < 3; ++I) {
    auto G = hir::buildHGraph(callerMethod(I));
    EXPECT_TRUE(bool(G));
    In.Methods.push_back(Gen.compile(*G));
  }
  In.Stubs = Cache.takeStubs();
  return In;
}

TEST(Linker, LayoutIsAlignedAndDisjoint) {
  auto O = link(makeInput(true));
  ASSERT_TRUE(bool(O)) << O.message();
  EXPECT_EQ(O->Methods.size(), 3u);
  EXPECT_FALSE(O->CtoStubs.empty());
  for (const auto &M : O->Methods)
    EXPECT_EQ(M.CodeOffset % 16, 0u);
  EXPECT_FALSE(bool(validateOat(*O)));
}

TEST(Linker, BindsCtoCalls) {
  auto O = link(makeInput(true));
  ASSERT_TRUE(bool(O));
  // Every bl in a method must land inside a stub.
  std::size_t Calls = 0;
  for (const auto &M : O->Methods) {
    for (uint32_t W = M.CodeOffset / 4;
         W < (M.CodeOffset + M.CodeSize) / 4; ++W) {
      auto I = a64::decode(O->Text[W]);
      if (!I || I->Op != a64::Opcode::Bl)
        continue;
      ++Calls;
      uint64_t Target = W * 4 + static_cast<uint64_t>(I->Imm);
      bool InStub = false;
      for (const auto &S : O->CtoStubs)
        InStub |= Target >= S.CodeOffset &&
                  Target < S.CodeOffset + S.CodeSize;
      EXPECT_TRUE(InStub) << "bl target not a stub";
    }
  }
  EXPECT_GT(Calls, 0u);
}

TEST(Linker, RejectsDanglingRelocation) {
  auto In = makeInput(true);
  In.Stubs.clear(); // Relocations now dangle.
  auto O = link(In);
  EXPECT_FALSE(bool(O));
  consumeError(O.takeError());
}

TEST(Linker, LinksOutlinedFunctions) {
  auto In = makeInput(false);
  // Hand-craft an outlined function and a call to it.
  OutlinedFunc Fn;
  Fn.Id = 42;
  a64::Insn Nop{.Op = a64::Opcode::Nop};
  a64::Insn RetBr{.Op = a64::Opcode::Br};
  RetBr.Rn = a64::LR;
  Fn.Code = {a64::encode(Nop), a64::encode(RetBr)};
  Fn.SeqLength = 1;
  Fn.Occurrences = 1;
  In.Outlined.push_back(Fn);

  // Replace the first method's first word with a bl to it.
  a64::Insn Bl{.Op = a64::Opcode::Bl};
  In.Methods[0].Code[0] = a64::encode(Bl);
  In.Methods[0].Relocs.push_back({0, RelocKind::OutlinedFunc, 42});
  // (The stp it replaced was load-bearing; this image is not meant to run.)

  auto O = link(In);
  ASSERT_TRUE(bool(O)) << O.message();
  ASSERT_EQ(O->Outlined.size(), 1u);
  auto I = a64::decode(O->Text[O->Methods[0].CodeOffset / 4]);
  ASSERT_TRUE(I && I->Op == a64::Opcode::Bl);
  EXPECT_EQ(O->Methods[0].CodeOffset + static_cast<uint64_t>(I->Imm),
            O->Outlined[0].CodeOffset);
}

TEST(Validate, CatchesTamperedPcRel) {
  auto O = link(makeInput(false));
  ASSERT_TRUE(bool(O));
  ASSERT_FALSE(bool(validateOat(*O)));
  // Find a method with a PC-relative record and break the instruction.
  for (auto &M : O->Methods) {
    if (M.Side.PcRelRecords.empty())
      continue;
    const auto &R = M.Side.PcRelRecords[0];
    uint32_t &Word = O->Text[(M.CodeOffset + R.InsnOffset) / 4];
    auto I = a64::decode(Word);
    ASSERT_TRUE(I.has_value());
    I->Imm += 8; // Point it somewhere else.
    Word = a64::encode(*I);
    EXPECT_TRUE(bool(validateOat(*O)));
    return;
  }
  FAIL() << "no pc-relative record found";
}

TEST(Validate, CatchesBadStackMap) {
  auto O = link(makeInput(false));
  ASSERT_TRUE(bool(O));
  auto &M = O->Methods[0];
  ASSERT_FALSE(M.Map.Entries.empty());
  M.Map.Entries[0].NativePcOffset = 4; // After the prologue stp: not a call.
  EXPECT_TRUE(bool(validateOat(*O)));
}

TEST(Validate, CatchesOverlappingRanges) {
  auto O = link(makeInput(false));
  ASSERT_TRUE(bool(O));
  O->Methods[1].CodeOffset = O->Methods[0].CodeOffset;
  EXPECT_TRUE(bool(validateOat(*O)));
}

TEST(OatFile, Queries) {
  auto O = link(makeInput(true));
  ASSERT_TRUE(bool(O));
  const auto *M = O->findMethod(1);
  ASSERT_NE(M, nullptr);
  EXPECT_EQ(O->methodContaining(M->CodeOffset), M);
  EXPECT_EQ(O->methodContaining(M->CodeOffset + M->CodeSize - 4), M);
  EXPECT_EQ(O->findMethod(99), nullptr);
  EXPECT_GT(O->stackMapBytes(), 0u);
  EXPECT_EQ(O->methodAddress(*M), O->BaseAddress + M->CodeOffset);
}

TEST(Dump, ContainsNamesAndDisasm) {
  auto O = link(makeInput(true));
  ASSERT_TRUE(bool(O));
  std::string S = dumpOat(*O, /*Disassemble=*/true);
  EXPECT_NE(S.find("caller0"), std::string::npos);
  EXPECT_NE(S.find("stp x29, x30"), std::string::npos);
  EXPECT_NE(S.find("cto:"), std::string::npos);
}

TEST(Dump, MarksEmbeddedData) {
  dex::Method M;
  M.Idx = 0;
  M.Name = "pool";
  M.NumRegs = 8;
  M.ReturnsValue = true;
  dex::Insn C;
  C.Opcode = dex::Op::ConstInt;
  C.A = 1;
  C.Imm = 0x123456789abLL;
  dex::Insn Ret;
  Ret.Opcode = dex::Op::Return;
  Ret.A = 1;
  M.Code = {C, Ret};
  LinkInput In;
  In.AppName = "pool";
  CtoStubCache Cache;
  CodeGenerator Gen({}, Cache);
  auto G = hir::buildHGraph(M);
  ASSERT_TRUE(bool(G));
  In.Methods.push_back(Gen.compile(*G));
  auto O = link(In);
  ASSERT_TRUE(bool(O));
  std::string S = dumpOat(*O, true);
  EXPECT_NE(S.find("embedded data"), std::string::npos);
}

} // namespace
