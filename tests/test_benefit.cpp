//===- tests/test_benefit.cpp - Fig. 2 benefit model tests ------------------===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//

#include "core/BenefitModel.h"

#include <gtest/gtest.h>

using namespace calibro::core;

namespace {

TEST(BenefitModel, PaperEquations) {
  // OriginalSize = L * N; OptimizedSize = N + 1 + L.
  EXPECT_EQ(originalSize(5, 10), 50u);
  EXPECT_EQ(optimizedSize(5, 10), 16u);
  EXPECT_EQ(benefit(5, 10), 34);
  EXPECT_DOUBLE_EQ(reductionRatio(5, 10), 34.0 / 50.0);
}

TEST(BenefitModel, BreakEvenBoundaries) {
  // L=2: 2N > N + 3  =>  N >= 4.
  EXPECT_FALSE(isProfitable(2, 3));
  EXPECT_TRUE(isProfitable(2, 4));
  // L=3: 3N > N + 4  =>  N >= 3.
  EXPECT_FALSE(isProfitable(3, 2));
  EXPECT_TRUE(isProfitable(3, 3));
  // N=2: 2L > L + 3  =>  L >= 4.
  EXPECT_FALSE(isProfitable(3, 2));
  EXPECT_TRUE(isProfitable(4, 2));
}

TEST(BenefitModel, NeverProfitableCases) {
  EXPECT_FALSE(isProfitable(1, 100)); // Single instruction: bl costs as much.
  EXPECT_FALSE(isProfitable(100, 1)); // Single occurrence.
  EXPECT_FALSE(isProfitable(0, 0));
}

class BenefitSweep
    : public ::testing::TestWithParam<std::tuple<uint64_t, uint64_t>> {};

TEST_P(BenefitSweep, RatioConsistency) {
  auto [L, N] = GetParam();
  int64_t B = benefit(L, N);
  EXPECT_EQ(B > 0, isProfitable(L, N));
  if (originalSize(L, N) > 0) {
    double Ratio = reductionRatio(L, N);
    EXPECT_LE(Ratio, 1.0);
    EXPECT_DOUBLE_EQ(Ratio * static_cast<double>(originalSize(L, N)),
                     static_cast<double>(B));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BenefitSweep,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u, 8u, 16u, 64u),
                       ::testing::Values(1u, 2u, 3u, 4u, 10u, 100u, 1000u)));

} // namespace
