//===- tests/test_cache.cpp - Incremental build cache tests -----------------===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The incremental-build contract (ISSUE 5): a warm rebuild from an
/// unchanged input is byte-identical to a cold build while skipping
/// codegen and LTBO detection for every unchanged method/group; a
/// single-method edit invalidates exactly that method and its partition
/// group; hit/miss/reuse counters are deterministic for any thread count;
/// and every flavor of store damage (corrupt blob, truncated blob, stale
/// format version) degrades to a cache miss — never a crash, never a
/// build failure, never a divergent image.
///
//===----------------------------------------------------------------------===//

#include "cache/BuildCache.h"
#include "cache/Digest.h"
#include "cache/ShardedCache.h"
#include "cache/SpillStore.h"
#include "core/Calibro.h"
#include "oat/Serialize.h"
#include "workload/Workload.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

using namespace calibro;

namespace {

namespace fs = std::filesystem;

/// Self-cleaning cache directory under the system temp dir.
struct TempCacheDir {
  fs::path Path;
  explicit TempCacheDir(const std::string &Tag)
      : Path(fs::temp_directory_path() /
             ("calibro-test-cache-" + Tag + "-" + std::to_string(::getpid()))) {
    fs::remove_all(Path);
  }
  ~TempCacheDir() { fs::remove_all(Path); }
  std::string str() const { return Path.string(); }
};

workload::AppSpec testSpec() {
  workload::AppSpec Spec;
  Spec.Name = "cacheapp";
  Spec.Seed = 4421;
  Spec.NumWorkers = 40;
  Spec.NumUtilities = 20;
  return Spec;
}

core::CalibroOptions cacheOpts(const std::string &Dir) {
  core::CalibroOptions Opts;
  Opts.EnableCto = true;
  Opts.EnableLtbo = true;
  Opts.LtboPartitions = 4;
  Opts.LtboThreads = 2;
  Opts.CompileThreads = 2;
  Opts.CacheDir = Dir;
  return Opts;
}

/// Bumps the first ConstInt immediate of the first outlining-candidate
/// method (non-native, no switch — so it stays in its LTBO group), and
/// returns that method's global index.
std::optional<uint32_t> churnOneMethod(dex::App &App) {
  for (auto &F : App.Files)
    for (auto &M : F.Methods) {
      if (M.IsNative)
        continue;
      bool HasSwitch = false;
      for (const auto &I : M.Code)
        HasSwitch |= I.Opcode == dex::Op::Switch;
      if (HasSwitch)
        continue;
      for (auto &I : M.Code)
        if (I.Opcode == dex::Op::ConstInt) {
          I.Imm += 1;
          return M.Idx;
        }
    }
  return std::nullopt;
}

/// All regular files under \p Dir, sorted for determinism.
std::vector<fs::path> listBlobs(const fs::path &Dir) {
  std::vector<fs::path> Out;
  for (const auto &E : fs::directory_iterator(Dir))
    if (E.is_regular_file() && E.path().extension() == ".bin")
      Out.push_back(E.path());
  std::sort(Out.begin(), Out.end());
  return Out;
}

void flipByteInFile(const fs::path &P, std::size_t Offset) {
  std::fstream F(P, std::ios::binary | std::ios::in | std::ios::out);
  ASSERT_TRUE(bool(F)) << P;
  F.seekg(static_cast<std::streamoff>(Offset));
  char C = 0;
  F.get(C);
  F.seekp(static_cast<std::streamoff>(Offset));
  F.put(static_cast<char>(C ^ 0x40));
}

} // namespace

TEST(CacheDigest, SourceKeyIsDeterministicAndInputSensitive) {
  dex::App App = workload::makeApp(testSpec());
  const dex::Method *M = App.findMethod(0);
  ASSERT_NE(M, nullptr);

  EXPECT_EQ(cache::methodSourceKey(*M, true), cache::methodSourceKey(*M, true));
  // The CTO flag changes what codegen produces, so it must key the entry.
  EXPECT_FALSE(cache::methodSourceKey(*M, true) ==
               cache::methodSourceKey(*M, false));

  dex::Method Edited = *M;
  bool Bumped = false;
  for (auto &I : Edited.Code)
    if (I.Opcode == dex::Op::ConstInt) {
      I.Imm += 1;
      Bumped = true;
      break;
    }
  if (Bumped) {
    EXPECT_FALSE(cache::methodSourceKey(Edited, true) ==
                 cache::methodSourceKey(*M, true));
  }
}

TEST(CacheStore, MethodBlobRoundtripAndAudit) {
  TempCacheDir Dir("roundtrip");
  dex::App App = workload::makeApp(testSpec());
  auto Opts = cacheOpts(Dir.str());

  auto Compiled = core::compileApp(App, Opts);
  ASSERT_TRUE(bool(Compiled)) << Compiled.message();
  EXPECT_EQ(Compiled->Stats.CacheMisses, App.numMethods());
  EXPECT_EQ(Compiled->Stats.CacheHits, 0u);
  EXPECT_EQ(Compiled->MethodDigests.size(), Compiled->Methods.size());

  // A second handle on the same store must return entries that compare
  // equal, field for field, to what the compiler just produced.
  auto Cache = cache::BuildCache::open(Dir.str());
  ASSERT_TRUE(bool(Cache)) << Cache.message();
  std::size_t Row = 0;
  App.forEachMethod([&](const dex::Method &M) {
    auto E = (*Cache)->loadMethod(cache::methodSourceKey(M, Opts.EnableCto));
    ASSERT_TRUE(E.has_value()) << M.Name;
    EXPECT_TRUE(E->Method == Compiled->Methods[Row]) << M.Name;
    ++Row;
  });

  cache::CacheAudit A = (*Cache)->audit();
  EXPECT_EQ(A.MethodEntries, App.numMethods());
  EXPECT_EQ(A.MethodCorrupt, 0u);
  EXPECT_EQ(A.GroupCorrupt, 0u);
  EXPECT_GT(A.TotalBytes, 0u);
}

TEST(CacheWarm, WarmRebuildIsByteIdenticalAndSkipsWork) {
  TempCacheDir Dir("warm");
  dex::App App = workload::makeApp(testSpec());
  auto Opts = cacheOpts(Dir.str());

  // Reference: the same configuration with no cache at all.
  auto NoCacheOpts = Opts;
  NoCacheOpts.CacheDir.clear();
  auto Ref = core::buildApp(App, NoCacheOpts);
  ASSERT_TRUE(bool(Ref)) << Ref.message();
  const std::vector<uint8_t> RefBytes = oat::serializeOat(Ref->Oat);

  // Cold: populates the store, and caching itself must not change the image.
  auto ColdC = core::compileApp(App, Opts);
  ASSERT_TRUE(bool(ColdC)) << ColdC.message();
  const std::vector<cache::Digest> ColdDigests = ColdC->MethodDigests;
  auto Cold = core::linkApp(std::move(*ColdC), Opts);
  ASSERT_TRUE(bool(Cold)) << Cold.message();
  EXPECT_EQ(oat::serializeOat(Cold->Oat), RefBytes);
  EXPECT_EQ(Cold->Stats.Ltbo.GroupsReused, 0u);
  const std::size_t NumGroups = Cold->Stats.Ltbo.GroupsDetected;
  EXPECT_GT(NumGroups, 0u);
  EXPECT_GT(Cold->Stats.Ltbo.SequencesOutlined, 0u);

  // Warm: every method probe hits, every group replays, output identical.
  auto WarmC = core::compileApp(App, Opts);
  ASSERT_TRUE(bool(WarmC)) << WarmC.message();
  EXPECT_EQ(WarmC->Stats.CacheHits, App.numMethods());
  EXPECT_EQ(WarmC->Stats.CacheMisses, 0u);
  EXPECT_EQ(WarmC->MethodDigests, ColdDigests);
  auto Warm = core::linkApp(std::move(*WarmC), Opts);
  ASSERT_TRUE(bool(Warm)) << Warm.message();
  EXPECT_EQ(Warm->Stats.Ltbo.GroupsReused, NumGroups);
  EXPECT_EQ(Warm->Stats.Ltbo.GroupsDetected, 0u);
  EXPECT_EQ(Warm->Stats.GroupsReused, NumGroups);
  EXPECT_EQ(oat::serializeOat(Warm->Oat), RefBytes);
  // Replayed groups build no suffix structure.
  EXPECT_EQ(Warm->Stats.Ltbo.TreeNodes, 0u);
  EXPECT_EQ(Warm->Stats.Ltbo.CandidatesEvaluated, 0u);
  // But the invariant outlining counters must match the cold run exactly.
  EXPECT_EQ(Warm->Stats.Ltbo.SequencesOutlined,
            Cold->Stats.Ltbo.SequencesOutlined);
  EXPECT_EQ(Warm->Stats.Ltbo.OccurrencesReplaced,
            Cold->Stats.Ltbo.OccurrencesReplaced);
  EXPECT_EQ(Warm->Stats.Ltbo.InsnsRemoved, Cold->Stats.Ltbo.InsnsRemoved);
  EXPECT_EQ(Warm->Stats.Ltbo.SymbolCount, Cold->Stats.Ltbo.SymbolCount);
}

TEST(CacheWarm, SingleMethodEditInvalidatesExactlyItsEntryAndGroup) {
  TempCacheDir Dir("edit");
  dex::App App = workload::makeApp(testSpec());
  auto Opts = cacheOpts(Dir.str());

  auto ColdC = core::compileApp(App, Opts);
  ASSERT_TRUE(bool(ColdC)) << ColdC.message();
  const std::vector<cache::Digest> ColdDigests = ColdC->MethodDigests;
  auto Cold = core::linkApp(std::move(*ColdC), Opts);
  ASSERT_TRUE(bool(Cold)) << Cold.message();
  const std::size_t NumGroups = Cold->Stats.Ltbo.GroupsDetected;
  ASSERT_GT(NumGroups, 1u);

  dex::App Edited = App;
  auto EditedIdx = churnOneMethod(Edited);
  ASSERT_TRUE(EditedIdx.has_value());

  // The edited app built with no cache is the byte-identity reference.
  auto NoCacheOpts = Opts;
  NoCacheOpts.CacheDir.clear();
  auto Ref = core::buildApp(Edited, NoCacheOpts);
  ASSERT_TRUE(bool(Ref)) << Ref.message();

  auto WarmC = core::compileApp(Edited, Opts);
  ASSERT_TRUE(bool(WarmC)) << WarmC.message();
  EXPECT_EQ(WarmC->Stats.CacheMisses, 1u);
  EXPECT_EQ(WarmC->Stats.CacheHits, App.numMethods() - 1);

  // The recompiled method's content really changed; everything else is
  // digest-identical to the cold build.
  ASSERT_EQ(WarmC->MethodDigests.size(), ColdDigests.size());
  std::size_t Changed = 0;
  for (std::size_t I = 0; I < ColdDigests.size(); ++I) {
    if (WarmC->Methods[I].MethodIdx == *EditedIdx) {
      EXPECT_FALSE(WarmC->MethodDigests[I] == ColdDigests[I]);
      ++Changed;
    } else {
      EXPECT_TRUE(WarmC->MethodDigests[I] == ColdDigests[I]);
    }
  }
  EXPECT_EQ(Changed, 1u);

  // Exactly the edited method's partition group re-runs detection.
  auto Warm = core::linkApp(std::move(*WarmC), Opts);
  ASSERT_TRUE(bool(Warm)) << Warm.message();
  EXPECT_EQ(Warm->Stats.Ltbo.GroupsDetected, 1u);
  EXPECT_EQ(Warm->Stats.Ltbo.GroupsReused, NumGroups - 1);
  EXPECT_EQ(oat::serializeOat(Warm->Oat), oat::serializeOat(Ref->Oat));
}

TEST(CacheWarm, CountersAreDeterministicForAnyThreadCount) {
  TempCacheDir Dir("threads");
  dex::App App = workload::makeApp(testSpec());
  auto Opts = cacheOpts(Dir.str());

  auto Cold = core::buildApp(App, Opts);
  ASSERT_TRUE(bool(Cold)) << Cold.message();
  const std::vector<uint8_t> ColdBytes = oat::serializeOat(Cold->Oat);

  std::optional<core::BuildStats> First;
  for (uint32_t Threads : {1u, 4u, 8u}) {
    auto T = Opts;
    T.CompileThreads = Threads;
    T.LtboThreads = Threads;
    auto Warm = core::buildApp(App, T);
    ASSERT_TRUE(bool(Warm)) << "threads " << Threads << ": " << Warm.message();
    EXPECT_EQ(oat::serializeOat(Warm->Oat), ColdBytes) << Threads;
    if (!First) {
      First = Warm->Stats;
      continue;
    }
    EXPECT_EQ(Warm->Stats.CacheHits, First->CacheHits) << Threads;
    EXPECT_EQ(Warm->Stats.CacheMisses, First->CacheMisses) << Threads;
    EXPECT_EQ(Warm->Stats.GroupsReused, First->GroupsReused) << Threads;
    EXPECT_EQ(Warm->Stats.Ltbo.GroupsDetected, First->Ltbo.GroupsDetected)
        << Threads;
  }
  ASSERT_TRUE(First.has_value());
  EXPECT_EQ(First->CacheHits, App.numMethods());
  EXPECT_EQ(First->CacheMisses, 0u);
}

TEST(CacheDamage, CorruptAndTruncatedBlobsDegradeToMisses) {
  TempCacheDir Dir("damage");
  dex::App App = workload::makeApp(testSpec());
  auto Opts = cacheOpts(Dir.str());

  auto Cold = core::buildApp(App, Opts);
  ASSERT_TRUE(bool(Cold)) << Cold.message();
  const std::vector<uint8_t> ColdBytes = oat::serializeOat(Cold->Oat);

  auto MethodBlobs = listBlobs(Dir.Path / "m");
  auto GroupBlobs = listBlobs(Dir.Path / "g");
  ASSERT_EQ(MethodBlobs.size(), App.numMethods());
  ASSERT_GT(GroupBlobs.size(), 0u);

  // Flip one payload byte in one method blob, truncate another to a stub,
  // and flip a byte in one group blob.
  flipByteInFile(MethodBlobs[0], fs::file_size(MethodBlobs[0]) / 2);
  fs::resize_file(MethodBlobs[1], fs::file_size(MethodBlobs[1]) / 2);
  flipByteInFile(GroupBlobs[0], fs::file_size(GroupBlobs[0]) / 2);

  // The audit sees exactly the damaged entries.
  auto Cache = cache::BuildCache::open(Dir.str());
  ASSERT_TRUE(bool(Cache)) << Cache.message();
  cache::CacheAudit A = (*Cache)->audit();
  EXPECT_EQ(A.MethodCorrupt, 2u);
  EXPECT_EQ(A.GroupCorrupt, 1u);

  // The warm build treats all three as misses and still reproduces the
  // cold image bit for bit.
  auto Warm = core::buildApp(App, Opts);
  ASSERT_TRUE(bool(Warm)) << Warm.message();
  EXPECT_EQ(Warm->Stats.CacheMisses, 2u);
  EXPECT_EQ(Warm->Stats.CacheHits, App.numMethods() - 2);
  EXPECT_GE(Warm->Stats.Ltbo.GroupsDetected, 1u);
  EXPECT_EQ(oat::serializeOat(Warm->Oat), ColdBytes);

  // The rebuild re-stored every damaged entry: the store is clean again.
  cache::CacheAudit After = (*Cache)->audit();
  EXPECT_EQ(After.MethodCorrupt, 0u);
  EXPECT_EQ(After.GroupCorrupt, 0u);
}

TEST(CacheDamage, FormatVersionMismatchPurgesTheStore) {
  TempCacheDir Dir("version");
  dex::App App = workload::makeApp(testSpec());
  auto Opts = cacheOpts(Dir.str());

  auto Cold = core::buildApp(App, Opts);
  ASSERT_TRUE(bool(Cold)) << Cold.message();
  ASSERT_GT(listBlobs(Dir.Path / "m").size(), 0u);

  {
    std::ofstream V(Dir.Path / "VERSION", std::ios::trunc);
    V << "calibro-cache 999\n";
  }

  // Reopening a stale-format store discards every entry and restamps.
  auto Cache = cache::BuildCache::open(Dir.str());
  ASSERT_TRUE(bool(Cache)) << Cache.message();
  cache::CacheAudit A = (*Cache)->audit();
  EXPECT_EQ(A.MethodEntries, 0u);
  EXPECT_EQ(A.GroupEntries, 0u);

  auto Rebuild = core::buildApp(App, Opts);
  ASSERT_TRUE(bool(Rebuild)) << Rebuild.message();
  EXPECT_EQ(Rebuild->Stats.CacheHits, 0u);
  EXPECT_EQ(Rebuild->Stats.CacheMisses, App.numMethods());
  EXPECT_EQ(oat::serializeOat(Rebuild->Oat), oat::serializeOat(Cold->Oat));
}

//===----------------------------------------------------------------------===//
// SpillStore (windowed linking's ephemeral spill target)
//===----------------------------------------------------------------------===//

TEST(SpillStore, EphemeralStoreRoundTripsAndSelfDestructs) {
  cache::Digest Key{0x1234, 0xabcd};
  cache::GroupSelections G;
  G.Funcs.push_back({4, 77, {0, 12, 40}});
  G.Funcs.push_back({2, 9, {5, 19}});

  std::string Dir;
  {
    auto S = cache::SpillStore::create();
    ASSERT_TRUE(bool(S)) << S.message();
    Dir = (*S)->dir();
    EXPECT_TRUE(fs::exists(Dir));

    (*S)->store().storeGroup(Key, G);
    auto Back = (*S)->store().loadGroup(Key);
    ASSERT_TRUE(Back.has_value());
    ASSERT_EQ(Back->Funcs.size(), 2u);
    EXPECT_EQ(Back->Funcs[0].SeqLen, 4u);
    EXPECT_EQ(Back->Funcs[0].Benefit, 77u);
    EXPECT_EQ(Back->Funcs[0].Positions, (std::vector<uint32_t>{0, 12, 40}));
    EXPECT_EQ(Back->Funcs[1].Positions, (std::vector<uint32_t>{5, 19}));
  } // RAII: the temp directory goes with the store.
  EXPECT_FALSE(fs::exists(Dir));
}

TEST(SpillStore, DistinctStoresGetDistinctDirectories) {
  auto A = cache::SpillStore::create();
  auto B = cache::SpillStore::create();
  ASSERT_TRUE(bool(A) && bool(B));
  EXPECT_NE((*A)->dir(), (*B)->dir());
}

TEST(SpillStore, DirOverrideIsKeptForInspection) {
  TempCacheDir Dir("spill-keep");
  std::string Kept;
  {
    auto S = cache::SpillStore::create(Dir.str());
    ASSERT_TRUE(bool(S)) << S.message();
    Kept = (*S)->dir();
    (*S)->store().storeGroup({1, 2}, cache::GroupSelections{});
  }
  // An explicit directory is the user's: it must survive the store.
  EXPECT_TRUE(fs::exists(Kept));
  auto Reopened = cache::BuildCache::open(Kept);
  ASSERT_TRUE(bool(Reopened));
  EXPECT_TRUE((*Reopened)->loadGroup({1, 2}).has_value());
}

TEST(SpillStore, ConcurrentCreatesClaimDistinctDirectories) {
  // The daemon regression: many same-process links spin up ephemeral spill
  // stores concurrently. Every store must CLAIM its own fresh directory —
  // a shared or adopted root would let two links overwrite each other's
  // group blobs.
  constexpr std::size_t NumStores = 16;
  std::vector<std::unique_ptr<cache::SpillStore>> Stores(NumStores);
  std::vector<std::thread> Threads;
  for (std::size_t T = 0; T < 4; ++T)
    Threads.emplace_back([&Stores, T] {
      for (std::size_t I = T; I < NumStores; I += 4) {
        auto S = cache::SpillStore::create();
        ASSERT_TRUE(bool(S)) << S.message();
        Stores[I] = std::move(*S);
      }
    });
  for (auto &T : Threads)
    T.join();
  std::set<std::string> Dirs;
  for (const auto &S : Stores) {
    ASSERT_NE(S, nullptr);
    EXPECT_TRUE(Dirs.insert(S->dir()).second) << "duplicate dir " << S->dir();
    EXPECT_TRUE(fs::exists(S->dir()));
  }
}

TEST(SpillStore, OccupiedCandidateNameIsSkippedNotAdopted) {
  // A crash-leaked directory (or a recycled pid's leftovers) can occupy the
  // next pid+counter candidate name. The exclusive-create claim must SKIP
  // it — adopting a foreign directory would replay someone else's blobs and
  // then delete them on destruction.
  auto Probe = cache::SpillStore::create();
  ASSERT_TRUE(bool(Probe)) << Probe.message();
  std::string ProbeDir = (*Probe)->dir();
  auto Dash = ProbeDir.find_last_of('-');
  ASSERT_NE(Dash, std::string::npos);
  uint64_t Counter = std::stoull(ProbeDir.substr(Dash + 1));

  // Occupy the next candidate name with a sentinel inside.
  fs::path Leaked = ProbeDir.substr(0, Dash + 1) + std::to_string(Counter + 1);
  fs::create_directories(Leaked);
  { std::ofstream(Leaked / "sentinel.txt") << "leaked"; }

  {
    auto Next = cache::SpillStore::create();
    ASSERT_TRUE(bool(Next)) << Next.message();
    EXPECT_NE((*Next)->dir(), Leaked.string());
  } // The new store's RAII cleanup runs here...
  // ...and the occupied directory and its contents were never touched.
  EXPECT_TRUE(fs::exists(Leaked / "sentinel.txt"));
  fs::remove_all(Leaked);
}

//===----------------------------------------------------------------------===//
// ShardedBuildCache (the daemon's shared store)
//===----------------------------------------------------------------------===//

namespace {

cache::GroupSelections testGroup(uint32_t Tag) {
  cache::GroupSelections G;
  G.Funcs.push_back({4, 100 + Tag, {Tag, Tag + 7, Tag + 19}});
  return G;
}

/// The on-disk size of one testGroup blob, measured on a throwaway store.
uint64_t groupBlobBytes() {
  TempCacheDir Dir("shard-probe");
  auto C = cache::ShardedBuildCache::open(Dir.str(), 1);
  EXPECT_TRUE(bool(C)) << C.message();
  (*C)->storeGroup({1, 1}, testGroup(1));
  return (*C)->stats().ResidentBytes;
}

} // namespace

TEST(ShardedCache, LruEvictionRespectsBudgetRecencyAndAuditStaysClean) {
  const uint64_t S = groupBlobBytes();
  ASSERT_GT(S, 0u);

  // One shard, budget for two blobs (and change).
  TempCacheDir Dir("shard-lru");
  auto C = cache::ShardedBuildCache::open(Dir.str(), 1, 2 * S + S / 2);
  ASSERT_TRUE(bool(C)) << C.message();

  cache::Digest D1{1, 0}, D2{2, 0}, D3{3, 0};
  (*C)->storeGroup(D1, testGroup(1));
  (*C)->storeGroup(D2, testGroup(2));
  EXPECT_EQ((*C)->stats().Evictions, 0u);

  // Touch D1 so D2 becomes the LRU victim of the next store.
  EXPECT_TRUE((*C)->loadGroup(D1).has_value());
  (*C)->storeGroup(D3, testGroup(3));

  cache::ShardedCacheStats St = (*C)->stats();
  EXPECT_EQ(St.Evictions, 1u);
  EXPECT_EQ(St.EvictedBytes, S);
  EXPECT_LE(St.ResidentBytes, (*C)->budgetBytes());
  EXPECT_TRUE((*C)->loadGroup(D1).has_value());
  EXPECT_FALSE((*C)->loadGroup(D2).has_value()) << "victim was not the LRU";
  EXPECT_TRUE((*C)->loadGroup(D3).has_value());

  // Eviction removed the blob AND its index entry: the store audits clean.
  cache::CacheAudit A = (*C)->audit();
  EXPECT_EQ(A.GroupEntries, 2u);
  EXPECT_EQ(A.GroupCorrupt, 0u);
  EXPECT_EQ(A.MethodCorrupt, 0u);
}

TEST(ShardedCache, PinnedEntryIsNeverEvicted) {
  const uint64_t S = groupBlobBytes();
  TempCacheDir Dir("shard-pin");
  // Budget for barely one blob: every second store must evict something.
  auto C = cache::ShardedBuildCache::open(Dir.str(), 1, S + S / 2);
  ASSERT_TRUE(bool(C)) << C.message();

  cache::Digest Replayed{10, 0};
  (*C)->storeGroup(Replayed, testGroup(10));

  {
    // The windowed-link merge pass's shape: pin the group for the span of
    // the replay, while other jobs' stores hammer the same shard.
    cache::ShardedBuildCache::Pin P = (*C)->pinGroup(Replayed);
    for (uint32_t I = 0; I < 8; ++I)
      (*C)->storeGroup({100 + I, 0}, testGroup(100 + I));
    EXPECT_GT((*C)->stats().Evictions, 0u);
    // Every eviction picked an unpinned victim; the replayed blob is whole.
    auto G = (*C)->loadGroup(Replayed);
    ASSERT_TRUE(G.has_value()) << "pinned blob was evicted mid-replay";
    EXPECT_EQ(G->Funcs.at(0).Positions, (std::vector<uint32_t>{10, 17, 29}));
  }

  // Pin released: the entry is ordinary again and stores may now evict it.
  uint64_t Before = (*C)->stats().Evictions;
  (*C)->storeGroup({200, 0}, testGroup(200));
  (*C)->storeGroup({201, 0}, testGroup(201));
  EXPECT_GT((*C)->stats().Evictions, Before);
  cache::CacheAudit A = (*C)->audit();
  EXPECT_EQ(A.GroupCorrupt, 0u);
}

TEST(ShardedCache, ResidentStoresAreDedupedNotRewritten) {
  TempCacheDir Dir("shard-dedup");
  auto C = cache::ShardedBuildCache::open(Dir.str(), 4);
  ASSERT_TRUE(bool(C)) << C.message();

  cache::Digest D{42, 7};
  (*C)->storeGroup(D, testGroup(42));
  // The second writer of a content-addressed key has identical bytes by
  // construction: the write is skipped, only recency advances.
  (*C)->storeGroup(D, testGroup(42));
  (*C)->storeGroup(D, testGroup(42));

  cache::ShardedCacheStats St = (*C)->stats();
  EXPECT_EQ(St.StoresDeduped, 2u);
  EXPECT_EQ(St.ResidentEntries, 1u);
  EXPECT_TRUE((*C)->loadGroup(D).has_value());
}

TEST(ShardedCache, AdoptionRebuildsIndexAndTrimsToTightenedBudget) {
  const uint64_t S = groupBlobBytes();
  TempCacheDir Dir("shard-adopt");
  {
    auto C = cache::ShardedBuildCache::open(Dir.str(), 2);
    ASSERT_TRUE(bool(C)) << C.message();
    for (uint32_t I = 0; I < 8; ++I)
      (*C)->storeGroup({I, 0}, testGroup(I));
    EXPECT_EQ((*C)->stats().ResidentEntries, 8u);
  }
  // A daemon restart reopens the fleet cache with a TIGHTER budget: the
  // adopted index must trim immediately, and what remains must audit clean.
  auto C = cache::ShardedBuildCache::open(Dir.str(), 2, 4 * S);
  ASSERT_TRUE(bool(C)) << C.message();
  cache::ShardedCacheStats St = (*C)->stats();
  EXPECT_LE(St.ResidentBytes, 4 * S);
  EXPECT_LT(St.ResidentEntries, 8u);
  EXPECT_GT(St.ResidentEntries, 0u);
  cache::CacheAudit A = (*C)->audit();
  EXPECT_EQ(A.GroupEntries, St.ResidentEntries);
  EXPECT_EQ(A.GroupCorrupt, 0u);
}

TEST(SpillStore, WindowedBuildSpillsIntoConfiguredCache) {
  // With both a cache and a budget, spilled groups ARE ordinary cache
  // entries: the next windowed build replays every group warm, and both
  // images match the unbudgeted build byte for byte.
  TempCacheDir Dir("spill-cache");
  dex::App App = workload::makeApp(testSpec());
  auto Opts = cacheOpts(Dir.str());
  Opts.MemoryBudgetBytes = 1 << 14;

  auto Cold = core::buildApp(App, Opts);
  ASSERT_TRUE(bool(Cold)) << Cold.message();
  EXPECT_GT(Cold->Stats.Ltbo.GroupsSpilled, 0u);
  EXPECT_GT(Cold->Stats.Ltbo.DetectWindows, 1u);

  auto Warm = core::buildApp(App, Opts);
  ASSERT_TRUE(bool(Warm)) << Warm.message();
  EXPECT_GT(Warm->Stats.Ltbo.GroupsReused, 0u);

  core::CalibroOptions Mono = cacheOpts("");
  Mono.CacheDir.clear();
  auto Unbudgeted = core::buildApp(App, Mono);
  ASSERT_TRUE(bool(Unbudgeted)) << Unbudgeted.message();
  EXPECT_EQ(oat::serializeOat(Cold->Oat), oat::serializeOat(Unbudgeted->Oat));
  EXPECT_EQ(oat::serializeOat(Warm->Oat), oat::serializeOat(Unbudgeted->Oat));
}
