//===- tools/calibro-compiled.cpp - Concurrent compile daemon CLI ---------===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compile-service front end: accepts many app-build jobs and runs them
/// concurrently over one shared thread pool, one sharded build cache, and
/// one global memory budget (service::CompileService).
///
/// Jobs arrive one per line on stdin:
///
///   app=<name> scale=<s> [seed=<n>] [budget=<bytes>] out=<path>
///
/// and every accepted job's OAT is written to its out path. Each image is
/// byte-identical to what a serial `calibro-dex2oat` build of the same spec
/// produces — the CI service-smoke job cmp's exactly that.
///
///   printf 'app=Wechat scale=0.3 out=w.oat\napp=Fanqie scale=0.3 out=f.oat\n' |
///     calibro-compiled --jobs 4 --threads 8 --cto --ltbo
///         --cache-dir /tmp/fleet --cache-shards 8
///         --global-memory-budget 8000000 --job-log jobs.jsonl
///
//===----------------------------------------------------------------------===//

#include "oat/Serialize.h"
#include "service/CompileService.h"
#include "workload/Workload.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace calibro;

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: calibro-compiled [options] < jobs\n"
      "job lines (stdin): app=<name> scale=<s> [seed=<n>] [budget=<bytes>] "
      "out=<path>\n"
      "service options:\n"
      "  --jobs <n>             concurrent jobs in flight (default 2)\n"
      "  --queue-depth <n>      max jobs waiting beyond the running ones;\n"
      "                         beyond it submissions are rejected and\n"
      "                         retried with backoff (default 8)\n"
      "  --threads <n>          workers of the one shared pool (0 = all)\n"
      "  --cache-dir <dir>      shared sharded build cache (empty = none)\n"
      "  --cache-shards <n>     shard count of the shared cache (default 8)\n"
      "  --cache-budget <bytes> LRU byte budget of the shared cache (0 = "
      "unbounded)\n"
      "  --global-memory-budget <bytes>  bound the SUM of concurrent jobs'\n"
      "                         detect budgets; each job gets a fair-share\n"
      "                         lease (output stays byte-identical)\n"
      "  --job-log <file>       machine-readable JSONL job log\n"
      "build options (applied to every job):\n"
      "  --cto --ltbo --partitions <k> --min-len <n> --max-len <n>\n"
      "  --verify --strict --dead-code --no-gc --no-merge --strict-gc\n"
      "  --layout / --no-layout  profile-driven function layout (default\n"
      "                          on; arms only for jobs with a profile and\n"
      "                          a closed world — otherwise byte-identical\n"
      "                          to a build without the stage)\n");
  std::exit(2);
}

const char *next(int &I, int Argc, char **Argv) {
  if (++I >= Argc)
    usage();
  return Argv[I];
}

/// One parsed job line.
struct JobLine {
  std::string AppName;
  double Scale = 0.5;
  uint64_t Seed = 0;
  uint64_t BudgetBytes = 0;
  std::string Out;
};

bool parseJobLine(const std::string &Line, JobLine &J) {
  std::istringstream In(Line);
  std::string Tok;
  while (In >> Tok) {
    auto Eq = Tok.find('=');
    if (Eq == std::string::npos)
      return false;
    std::string K = Tok.substr(0, Eq), V = Tok.substr(Eq + 1);
    if (K == "app")
      J.AppName = V;
    else if (K == "scale")
      J.Scale = std::atof(V.c_str());
    else if (K == "seed")
      J.Seed = std::strtoull(V.c_str(), nullptr, 0);
    else if (K == "budget")
      J.BudgetBytes = std::strtoull(V.c_str(), nullptr, 0);
    else if (K == "out")
      J.Out = V;
    else
      return false;
  }
  return !J.AppName.empty() && !J.Out.empty();
}

} // namespace

int main(int argc, char **argv) {
  service::ServiceOptions SOpts;
  core::CalibroOptions Build;
  bool DeadCode = false;
  bool ExplicitPartitions = false;

  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    if (A == "--jobs")
      SOpts.JobSlots = std::atoi(next(I, argc, argv));
    else if (A == "--queue-depth")
      SOpts.QueueDepth = std::atoi(next(I, argc, argv));
    else if (A == "--threads")
      SOpts.Threads = std::atoi(next(I, argc, argv));
    else if (A == "--cache-dir")
      SOpts.CacheDir = next(I, argc, argv);
    else if (A == "--cache-shards")
      SOpts.CacheShards = std::atoi(next(I, argc, argv));
    else if (A == "--cache-budget")
      SOpts.CacheBudgetBytes = std::strtoull(next(I, argc, argv), nullptr, 0);
    else if (A == "--global-memory-budget")
      SOpts.GlobalMemoryBudgetBytes =
          std::strtoull(next(I, argc, argv), nullptr, 0);
    else if (A == "--job-log")
      SOpts.JobLogPath = next(I, argc, argv);
    else if (A == "--cto")
      Build.EnableCto = true;
    else if (A == "--ltbo")
      Build.EnableLtbo = true;
    else if (A == "--partitions") {
      Build.LtboPartitions = std::atoi(next(I, argc, argv));
      ExplicitPartitions = true;
    } else if (A == "--min-len")
      Build.MinSeqLen = std::atoi(next(I, argc, argv));
    else if (A == "--max-len")
      Build.MaxSeqLen = std::atoi(next(I, argc, argv));
    else if (A == "--verify")
      Build.VerifyOutput = true;
    else if (A == "--strict")
      Build.StrictSideInfo = true;
    else if (A == "--dead-code")
      DeadCode = true;
    else if (A == "--no-gc")
      Build.EnableGc = false;
    else if (A == "--no-merge")
      Build.EnableMerge = false;
    else if (A == "--strict-gc")
      Build.StrictCallGraph = true;
    else if (A == "--layout")
      Build.EnableLayout = true;
    else if (A == "--no-layout")
      Build.EnableLayout = false;
    else
      usage();
  }

  struct Pending {
    JobLine Line;
    std::unique_ptr<dex::App> App;
    std::shared_ptr<service::JobHandle> Handle;
  };
  // Declared BEFORE the service: in-flight jobs reference these apps, so on
  // any exit path the service must drain (its destructor) before Jobs dies.
  std::vector<Pending> Jobs;

  auto Svc = service::CompileService::create(SOpts);
  if (!Svc) {
    std::fprintf(stderr, "%s\n", Svc.message().c_str());
    return 1;
  }

  std::string Line;
  while (std::getline(std::cin, Line)) {
    if (Line.empty() || Line[0] == '#')
      continue;
    JobLine J;
    if (!parseJobLine(Line, J)) {
      std::fprintf(stderr, "bad job line: %s\n", Line.c_str());
      return 2;
    }
    workload::AppSpec Spec;
    bool Found = false;
    for (const auto &S : workload::paperApps(J.Scale))
      if (S.Name == J.AppName) {
        Spec = S;
        Found = true;
      }
    if (!Found) {
      std::fprintf(stderr, "unknown app '%s'\n", J.AppName.c_str());
      return 2;
    }
    if (J.Seed)
      Spec.Seed = J.Seed;
    if (DeadCode)
      workload::enableDeadCode(Spec);

    Pending P;
    P.Line = J;
    P.App = std::make_unique<dex::App>(workload::makeApp(Spec));

    service::JobSpec Job;
    Job.Name = J.AppName + ":" + J.Out;
    Job.App = P.App.get();
    Job.Build = Build;
    // A budget with no explicit K lets the outliner derive the partition
    // count from the granted budget (Partitions = 0 means "auto").
    if ((J.BudgetBytes || SOpts.GlobalMemoryBudgetBytes) &&
        !ExplicitPartitions)
      Job.Build.LtboPartitions = 0;
    Job.MemoryBudgetBytes = J.BudgetBytes;

    // Backpressure: a full queue is the service telling us to slow down,
    // not an error. Retry with a small backoff until admitted.
    for (;;) {
      auto H = (*Svc)->submit(Job);
      if (H) {
        P.Handle = std::move(*H);
        break;
      }
      if (H.category() != ErrCat::Service) {
        std::fprintf(stderr, "%s\n", H.message().c_str());
        return 1;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    Jobs.push_back(std::move(P));
  }

  int Failures = 0;
  for (auto &P : Jobs) {
    const service::JobRecord &R = P.Handle->wait();
    if (!R.Ok) {
      std::fprintf(stderr, "job %s failed [%s]: %s\n", R.Name.c_str(),
                   errCatName(R.ErrorCategory), R.ErrorMessage.c_str());
      ++Failures;
      continue;
    }
    if (auto E = oat::writeOatFile(P.Handle->oat(), P.Line.Out)) {
      std::fprintf(stderr, "%s\n", E.message().c_str());
      ++Failures;
      continue;
    }
    std::fprintf(stderr,
                 "job %s: .text %llu bytes, queue %.3fs, build %.3fs, "
                 "cache %zu/%zu hits, budget %llu\n",
                 R.Name.c_str(), (unsigned long long)R.Stats.TextBytes,
                 R.QueueSeconds, R.BuildSeconds, R.Stats.CacheHits,
                 R.Stats.CacheHits + R.Stats.CacheMisses,
                 (unsigned long long)R.GrantedBudgetBytes);
  }

  (*Svc)->shutdown();
  service::ServiceStats St = (*Svc)->stats();
  std::fprintf(stderr,
               "service: %llu accepted, %llu rejected (retried), %llu ok, "
               "%llu failed, peak queue %llu, arbiter peak %llu bytes\n",
               (unsigned long long)St.JobsAccepted,
               (unsigned long long)St.JobsRejected,
               (unsigned long long)St.JobsSucceeded,
               (unsigned long long)St.JobsFailed,
               (unsigned long long)St.PeakQueueDepth,
               (unsigned long long)St.ArbiterPeakBytes);
  if (auto *C = (*Svc)->sharedCache()) {
    cache::ShardedCacheStats CS = C->stats();
    std::fprintf(stderr,
                 "cache: %llu/%llu method hits, %llu/%llu group hits, "
                 "%llu deduped stores, %llu evictions (%llu bytes), "
                 "%llu resident bytes\n",
                 (unsigned long long)CS.MethodHits,
                 (unsigned long long)(CS.MethodHits + CS.MethodMisses),
                 (unsigned long long)CS.GroupHits,
                 (unsigned long long)(CS.GroupHits + CS.GroupMisses),
                 (unsigned long long)CS.StoresDeduped,
                 (unsigned long long)CS.Evictions,
                 (unsigned long long)CS.EvictedBytes,
                 (unsigned long long)CS.ResidentBytes);
  }
  return Failures ? 1 : 0;
}
