//===- tools/calibro-dex2oat.cpp - Build OAT files from the CLI -------------===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dex2oat-shaped command-line front end: generates a synthetic app (a
/// paper preset or a custom spec), compiles it under the selected Calibro
/// configuration, and writes the resulting OAT (special ELF) to disk.
///
///   calibro-dex2oat --app Wechat --scale 0.5 --cto --ltbo
///                   --partitions 8 --threads 2 --hf -o wechat.oat
///
//===----------------------------------------------------------------------===//

#include "core/Calibro.h"
#include "oat/Serialize.h"
#include "sim/Simulator.h"
#include "workload/Workload.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace calibro;

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: calibro-dex2oat [options] -o <out.oat>\n"
      "  --app <name>       paper app preset (Toutiao..Wechat; default "
      "Wechat)\n"
      "  --scale <s>        workload scale (default 0.5)\n"
      "  --seed <n>         override the app seed\n"
      "  --cto              enable compilation-time outlining (paper 3.1)\n"
      "  --ltbo             enable link-time binary outlining (paper 3.3)\n"
      "  --partitions <k>   paralleled suffix trees (paper 3.4.1)\n"
      "  --threads <n>      LTBO worker threads\n"
      "  --memory-budget <bytes>  bound LTBO's peak detection working set:\n"
      "                     detection streams in budget-sized windows,\n"
      "                     spilling finished groups to the build cache (or\n"
      "                     an ephemeral temp store); output is\n"
      "                     byte-identical to an unbudgeted build. Without\n"
      "                     an explicit --partitions, K is derived from the\n"
      "                     budget\n"
      "  --hf               hot-function filtering: profile a scripted run\n"
      "                     of the unfiltered build first (paper 3.4.2)\n"
      "  --profile          collect the same scripted runtime profile and\n"
      "                     feed it to the profile-consuming stages (hot\n"
      "                     filtering + layout) — alias of --hf\n"
      "  --layout           profile-driven function layout (default on):\n"
      "                     reorder .text by co-execution affinity so\n"
      "                     profiled startups touch fewer code pages; arms\n"
      "                     only with a profile and a closed world\n"
      "  --no-layout        disable the layout stage\n"
      "  --min-len/--max-len <n>  candidate length bounds\n"
      "  --verify           statically verify the linked image before\n"
      "                     writing it (whole-text decode + branch targets)\n"
      "  --strict           fail the build on the first method with invalid\n"
      "                     LTBO side info instead of degrading per method\n"
      "  --cache-dir <dir>  persistent build cache: unchanged methods skip\n"
      "                     codegen, unchanged LTBO groups skip detection\n"
      "  --cache-stats      print cache hit/miss/group-reuse counters\n"
      "  --dead-code        arm the workload's closed-world knobs: declared\n"
      "                     entrypoints, garbage methods, clone families\n"
      "  --no-gc            disable the closed-world reachability GC\n"
      "  --no-merge         disable global method merging\n"
      "  --strict-gc        fail the build on any call-graph anomaly\n"
      "  -o <file>          output path (required)\n");
  std::exit(2);
}

const char *next(int &I, int Argc, char **Argv) {
  if (++I >= Argc)
    usage();
  return Argv[I];
}

} // namespace

int main(int argc, char **argv) {
  std::string AppName = "Wechat";
  std::string Out;
  double Scale = 0.5;
  uint64_t Seed = 0;
  bool Hf = false;
  bool CacheStats = false;
  bool DeadCode = false;
  bool ExplicitPartitions = false;
  core::CalibroOptions Opts;

  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    if (A == "--app")
      AppName = next(I, argc, argv);
    else if (A == "--scale")
      Scale = std::atof(next(I, argc, argv));
    else if (A == "--seed")
      Seed = std::strtoull(next(I, argc, argv), nullptr, 0);
    else if (A == "--cto")
      Opts.EnableCto = true;
    else if (A == "--ltbo")
      Opts.EnableLtbo = true;
    else if (A == "--partitions") {
      Opts.LtboPartitions = std::atoi(next(I, argc, argv));
      ExplicitPartitions = true;
    } else if (A == "--memory-budget")
      Opts.MemoryBudgetBytes = std::strtoull(next(I, argc, argv), nullptr, 0);
    else if (A == "--threads")
      Opts.LtboThreads = std::atoi(next(I, argc, argv));
    else if (A == "--min-len")
      Opts.MinSeqLen = std::atoi(next(I, argc, argv));
    else if (A == "--max-len")
      Opts.MaxSeqLen = std::atoi(next(I, argc, argv));
    else if (A == "--hf" || A == "--profile")
      Hf = true;
    else if (A == "--layout")
      Opts.EnableLayout = true;
    else if (A == "--no-layout")
      Opts.EnableLayout = false;
    else if (A == "--verify")
      Opts.VerifyOutput = true;
    else if (A == "--strict")
      Opts.StrictSideInfo = true;
    else if (A == "--cache-dir")
      Opts.CacheDir = next(I, argc, argv);
    else if (A == "--cache-stats")
      CacheStats = true;
    else if (A == "--dead-code")
      DeadCode = true;
    else if (A == "--no-gc")
      Opts.EnableGc = false;
    else if (A == "--no-merge")
      Opts.EnableMerge = false;
    else if (A == "--strict-gc")
      Opts.StrictCallGraph = true;
    else if (A == "-o")
      Out = next(I, argc, argv);
    else
      usage();
  }
  if (Out.empty())
    usage();
  // A budget with no explicit K lets the outliner derive the partition
  // count from the budget (Partitions = 0 means "auto").
  if (Opts.MemoryBudgetBytes && !ExplicitPartitions)
    Opts.LtboPartitions = 0;

  workload::AppSpec Spec;
  bool Found = false;
  for (const auto &S : workload::paperApps(Scale))
    if (S.Name == AppName) {
      Spec = S;
      Found = true;
    }
  if (!Found) {
    std::fprintf(stderr, "unknown app '%s'\n", AppName.c_str());
    return 1;
  }
  if (Seed)
    Spec.Seed = Seed;
  if (DeadCode)
    workload::enableDeadCode(Spec);

  dex::App App = workload::makeApp(Spec);
  std::fprintf(stderr, "compiling %s: %zu methods, %zu dex files\n",
               AppName.c_str(), App.numMethods(), App.Files.size());

  profile::Profile Prof;
  if (Hf) {
    // Fig. 6: build unfiltered, run the script under the profiler, then
    // let the profile guide the real build.
    auto Pre = core::buildApp(App, Opts);
    if (!Pre) {
      std::fprintf(stderr, "build failed: %s\n", Pre.message().c_str());
      return 1;
    }
    sim::SimOptions SOpts;
    SOpts.CollectProfile = true;
    sim::Simulator Sim(Pre->Oat, SOpts);
    for (const auto &Inv : workload::makeScript(Spec, 30, 99)) {
      auto R = Sim.call(Inv.MethodIdx, Inv.Args);
      if (!R) {
        std::fprintf(stderr, "profiling run fault: %s\n",
                     R.message().c_str());
        return 1;
      }
    }
    Prof = Sim.profileData();
    Opts.Profile = &Prof;
  }

  auto B = core::buildApp(App, Opts);
  if (!B) {
    std::fprintf(stderr, "build failed [%s]: %s\n",
                 errCatName(B.category()), B.message().c_str());
    return 1;
  }
  if (auto E = oat::writeOatFile(B->Oat, Out)) {
    std::fprintf(stderr, "%s\n", E.message().c_str());
    return 1;
  }

  const auto &St = B->Stats;
  std::fprintf(stderr,
               "wrote %s: .text %llu bytes, %zu methods, %zu stubs, %zu "
               "outlined fns\n"
               "  compile %.3fs, ltbo %.3fs (outlined %zu seqs, %zu "
               "occurrences), link %.3fs\n",
               Out.c_str(), (unsigned long long)B->Oat.textBytes(),
               B->Oat.Methods.size(), B->Oat.CtoStubs.size(),
               B->Oat.Outlined.size(), St.CompileSeconds, St.LtboSeconds,
               St.Ltbo.SequencesOutlined, St.Ltbo.OccurrencesReplaced,
               St.LinkSeconds);
  // Only when windowed detection actually ran: a budget with LTBO disabled
  // (or an app with nothing to detect) would print a block of zeros.
  if (Opts.MemoryBudgetBytes && St.Ltbo.DetectWindows)
    std::fprintf(stderr,
                 "  windowed: %zu partitions, %zu windows, window peak %zu "
                 "bytes (budget %llu), %zu groups spilled, %zu overruns, "
                 "merge %.3fs\n",
                 St.Ltbo.PartitionsUsed, St.Ltbo.DetectWindows,
                 St.Ltbo.DetectWindowPeakBytes,
                 (unsigned long long)Opts.MemoryBudgetBytes,
                 St.Ltbo.GroupsSpilled, St.Ltbo.DetectBudgetOverruns,
                 St.Ltbo.MergeSeconds);
  if (CacheStats && !Opts.CacheDir.empty())
    std::fprintf(stderr,
                 "  cache: %zu method hits, %zu misses, %zu/%zu LTBO groups "
                 "replayed\n",
                 St.CacheHits, St.CacheMisses, St.Ltbo.GroupsReused,
                 St.Ltbo.GroupsReused + St.Ltbo.GroupsDetected);
  if (!St.Ltbo.MethodsGCed.empty() || St.Ltbo.MethodsMergedIdentical ||
      St.Ltbo.MethodsMergedThunk)
    std::fprintf(stderr,
                 "  analysis: gc dropped %zu methods (%llu bytes), merged "
                 "%zu identical + %zu thunks (%llu bytes), %zu anomalies, "
                 "%zu repaired edges\n",
                 St.Ltbo.MethodsGCed.size(),
                 (unsigned long long)St.Ltbo.GcBytes,
                 St.Ltbo.MethodsMergedIdentical, St.Ltbo.MethodsMergedThunk,
                 (unsigned long long)St.Ltbo.MergeSavedBytes,
                 St.Ltbo.CallGraphAnomalies, St.Ltbo.RepairedEdges);
  if (St.LayoutApplied)
    std::fprintf(stderr,
                 "  layout: %zu nodes (%zu warm), %zu edges, page-crossing "
                 "affinity %llu -> %llu, %.3fs\n",
                 St.LayoutNodes, St.LayoutWarmNodes, St.LayoutEdges,
                 (unsigned long long)St.LayoutCutBefore,
                 (unsigned long long)St.LayoutCutAfter, St.LayoutSeconds);
  if (St.Ltbo.MethodsRejected) {
    std::fprintf(stderr,
                 "  degraded: %zu methods excluded from outlining "
                 "(invalid side info; linked verbatim):\n",
                 St.Ltbo.MethodsRejected);
    for (std::size_t F = 0; F < codegen::NumSideInfoFaults; ++F)
      if (St.Ltbo.RejectedByFault[F])
        std::fprintf(stderr, "    %s: %zu\n",
                     codegen::sideInfoFaultName(
                         static_cast<codegen::SideInfoFault>(F)),
                     St.Ltbo.RejectedByFault[F]);
  }
  return 0;
}
