//===- tools/calibro-run.cpp - Execute OAT files from the CLI ---------------===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Loads an OAT file into the simulator and calls a method:
///
///   calibro-run file.oat --method 0 --args 5 9
///
/// Prints the outcome, return value, instruction/cycle counts and the
/// architectural trace hash (compare two builds' hashes to check
/// behavioural equivalence from the shell).
///
//===----------------------------------------------------------------------===//

#include "oat/MappedOat.h"
#include "oat/Serialize.h"
#include "sim/Simulator.h"
#include "verify/OatVerifier.h"

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace calibro;

int main(int argc, char **argv) {
  const char *Path = nullptr;
  uint32_t MethodIdx = 0;
  std::vector<int64_t> Args;
  bool Trace = false;
  bool Verify = false;
  for (int I = 1; I < argc; ++I) {
    if (!std::strcmp(argv[I], "--method") && I + 1 < argc)
      MethodIdx = static_cast<uint32_t>(std::atoi(argv[++I]));
    else if (!std::strcmp(argv[I], "--trace"))
      Trace = true;
    else if (!std::strcmp(argv[I], "--verify"))
      Verify = true;
    else if (!std::strcmp(argv[I], "--args")) {
      while (I + 1 < argc && argv[I + 1][0] != '-')
        Args.push_back(std::atoll(argv[++I]));
    } else
      Path = argv[I];
  }
  if (!Path) {
    std::fprintf(stderr, "usage: calibro-run <file.oat> [--method N] "
                         "[--args a b ...] [--trace] [--verify]\n");
    return 2;
  }

  // Map, don't read: the simulator decodes the image once into its own
  // structures, so the file image itself never needs a heap copy.
  auto Mapped = oat::MappedOat::open(Path);
  if (!Mapped) {
    std::fprintf(stderr, "%s: [%s] %s\n", Path, errCatName(Mapped.category()),
                 Mapped.message().c_str());
    return 1;
  }
  auto O = Mapped->parse();
  if (!O) {
    std::fprintf(stderr, "%s: [%s] %s\n", Path, errCatName(O.category()),
                 O.message().c_str());
    return 1;
  }
  if (Verify) {
    verify::OatVerifier V(*O);
    if (auto E = V.run()) {
      std::fprintf(stderr, "verify failed: %s\n", E.message().c_str());
      return 1;
    }
    const auto &VS = V.stats();
    std::fprintf(stderr,
                 "verify ok: %zu insns, %zu data words, %zu branches, "
                 "%zu calls, %zu outlined fns\n",
                 VS.WordsDecoded, VS.DataWords, VS.BranchesChecked,
                 VS.CallsChecked, VS.OutlinedChecked);
  }

  sim::SimOptions Opts;
  if (Trace)
    Opts.TraceTo = stderr;
  sim::Simulator Sim(*O, Opts);
  auto R = Sim.call(MethodIdx, Args);
  if (!R) {
    std::fprintf(stderr, "fault: %s\n", R.message().c_str());
    return 1;
  }
  std::printf("outcome:   %s\n", sim::outcomeName(R->What));
  std::printf("return:    %lld\n", (long long)R->ReturnValue);
  std::printf("insns:     %llu\n", (unsigned long long)R->Insns);
  std::printf("cycles:    %llu\n", (unsigned long long)R->Cycles);
  std::printf("calls:     %llu\n", (unsigned long long)R->Calls);
  std::printf("ic misses: %llu\n", (unsigned long long)R->ICacheMisses);
  std::printf("trace:     %016llx\n", (unsigned long long)R->TraceHash);
  return 0;
}
