//===- tools/calibro-oatdump.cpp - Inspect OAT files from the CLI -----------===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// oatdump for this repo's OAT (special ELF) files:
///
///   calibro-oatdump file.oat                # header summary
///   calibro-oatdump --disasm file.oat       # full disassembly
///   calibro-oatdump --method W17 file.oat   # methods matching a fragment
///   calibro-oatdump --check file.oat        # audit per-method side info
///   calibro-oatdump --cache-audit <dir>     # audit a build-cache store
///
//===----------------------------------------------------------------------===//

#include "cache/BuildCache.h"
#include "codegen/SideInfoValidator.h"
#include "oat/Dump.h"
#include "oat/MappedOat.h"
#include "oat/Serialize.h"

#include <cstdio>
#include <cstring>
#include <string>

using namespace calibro;

namespace {

/// Re-runs the deep side-info validator over every outlining-eligible
/// method of a linked image and reports each fault. Returns the number of
/// methods that failed the audit.
int checkSideInfo(const oat::OatFile &O) {
  int Bad = 0;
  std::size_t Audited = 0, Skipped = 0;
  for (const auto &M : O.Methods) {
    if (M.Side.IsNative || M.Side.HasIndirectJump) {
      ++Skipped;
      continue;
    }
    ++Audited;
    codegen::CompiledMethod C;
    C.MethodIdx = M.MethodIdx;
    C.Name = M.Name;
    C.Side = M.Side;
    C.Map = M.Map;
    std::size_t First = M.CodeOffset / 4;
    std::size_t Words = M.CodeSize / 4;
    if (M.CodeOffset % 4 || First + Words > O.Text.size()) {
      std::printf("method %s: code range outside .text\n", M.Name.c_str());
      ++Bad;
      continue;
    }
    C.Code.assign(O.Text.begin() + First, O.Text.begin() + First + Words);
    if (auto D = codegen::validateSideInfo(C)) {
      std::printf("method %s: %s %s\n", M.Name.c_str(),
                  codegen::sideInfoFaultName(D.Fault), D.Detail.c_str());
      ++Bad;
    }
  }
  std::printf("side-info audit: %zu methods audited, %zu skipped "
              "(native/indirect), %d faulty\n",
              Audited, Skipped, Bad);
  return Bad;
}

/// Opens a build-cache directory and walks every blob through the same
/// checksum + decode + side-info validation a warm build would apply.
/// Returns nonzero when any entry is corrupt.
int cacheAudit(const char *Dir) {
  auto C = cache::BuildCache::open(Dir);
  if (!C) {
    std::fprintf(stderr, "%s: %s\n", Dir, C.message().c_str());
    return 1;
  }
  cache::CacheAudit A = (*C)->audit();
  std::printf("cache audit of %s:\n"
              "  method entries: %zu (%zu corrupt)\n"
              "  group entries:  %zu (%zu corrupt)\n"
              "  total bytes:    %zu\n",
              Dir, A.MethodEntries, A.MethodCorrupt, A.GroupEntries,
              A.GroupCorrupt, A.TotalBytes);
  return (A.MethodCorrupt || A.GroupCorrupt) ? 1 : 0;
}

} // namespace

int main(int argc, char **argv) {
  bool Disasm = false;
  bool Check = false;
  const char *Filter = nullptr;
  const char *Path = nullptr;
  const char *CacheDir = nullptr;
  for (int I = 1; I < argc; ++I) {
    if (!std::strcmp(argv[I], "--disasm"))
      Disasm = true;
    else if (!std::strcmp(argv[I], "--check"))
      Check = true;
    else if (!std::strcmp(argv[I], "--method") && I + 1 < argc)
      Filter = argv[++I];
    else if (!std::strcmp(argv[I], "--cache-audit") && I + 1 < argc)
      CacheDir = argv[++I];
    else
      Path = argv[I];
  }
  if (CacheDir)
    return cacheAudit(CacheDir);
  if (!Path) {
    std::fprintf(stderr,
                 "usage: calibro-oatdump [--disasm] [--check] "
                 "[--method <fragment>] [--cache-audit <dir>] <file.oat>\n");
    return 2;
  }

  // Map rather than read: dumping only decodes each section once, so
  // parsing straight out of the mapping skips the whole-image heap copy.
  auto Mapped = oat::MappedOat::open(Path);
  if (!Mapped) {
    std::fprintf(stderr, "%s: [%s] %s\n", Path, errCatName(Mapped.category()),
                 Mapped.message().c_str());
    return 1;
  }
  auto O = Mapped->parse();
  if (!O) {
    std::fprintf(stderr, "%s: [%s] %s\n", Path, errCatName(O.category()),
                 O.message().c_str());
    return 1;
  }

  if (Check)
    return checkSideInfo(*O) ? 1 : 0;

  if (Filter) {
    std::fputs(oat::dumpOat(*O, false).c_str(), stdout);
    for (const auto &M : O->Methods)
      if (M.Name.find(Filter) != std::string::npos) {
        std::fputs("\n", stdout);
        std::fputs(oat::dumpMethod(*O, M).c_str(), stdout);
      }
    return 0;
  }
  std::fputs(oat::dumpOat(*O, Disasm).c_str(), stdout);
  return 0;
}
