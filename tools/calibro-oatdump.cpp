//===- tools/calibro-oatdump.cpp - Inspect OAT files from the CLI -----------===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// oatdump for this repo's OAT (special ELF) files:
///
///   calibro-oatdump file.oat                # header summary
///   calibro-oatdump --disasm file.oat       # full disassembly
///   calibro-oatdump --method W17 file.oat   # methods matching a fragment
///   calibro-oatdump --check file.oat        # audit per-method side info
///   calibro-oatdump --layout-order file.oat # final .text placement, page
///                                           # map and affinity-cut summary
///   calibro-oatdump --cache-audit <dir>     # audit a build-cache store
///   calibro-oatdump --callgraph --app Wechat --dead-code
///                                           # compile the app spec and dump
///                                           # its call graph as JSON
///
//===----------------------------------------------------------------------===//

#include "aarch64/Decoder.h"
#include "aarch64/PcRel.h"
#include "analysis/CallGraph.h"
#include "cache/BuildCache.h"
#include "codegen/SideInfoValidator.h"
#include "core/Calibro.h"
#include "oat/Dump.h"
#include "oat/MappedOat.h"
#include "oat/Serialize.h"
#include "workload/Workload.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <unordered_map>
#include <vector>

using namespace calibro;

namespace {

/// Re-runs the deep side-info validator over every outlining-eligible
/// method of a linked image and reports each fault. Returns the number of
/// methods that failed the audit.
int checkSideInfo(const oat::OatFile &O) {
  int Bad = 0;
  std::size_t Audited = 0, Skipped = 0;
  for (const auto &M : O.Methods) {
    // Merged entries (aliases, thunks) intentionally under-describe their
    // code: an alias shares the canonical's metadata and a thunk's trailing
    // branch is unrecorded. validateOat checks them by shape instead.
    if (M.Side.IsNative || M.Side.HasIndirectJump ||
        M.MergedInto != oat::NoMergeParent) {
      ++Skipped;
      continue;
    }
    ++Audited;
    codegen::CompiledMethod C;
    C.MethodIdx = M.MethodIdx;
    C.Name = M.Name;
    C.Side = M.Side;
    C.Map = M.Map;
    std::size_t First = M.CodeOffset / 4;
    std::size_t Words = M.CodeSize / 4;
    if (M.CodeOffset % 4 || First + Words > O.Text.size()) {
      std::printf("method %s: code range outside .text\n", M.Name.c_str());
      ++Bad;
      continue;
    }
    C.Code.assign(O.Text.begin() + First, O.Text.begin() + First + Words);
    if (auto D = codegen::validateSideInfo(C)) {
      std::printf("method %s: %s %s\n", M.Name.c_str(),
                  codegen::sideInfoFaultName(D.Fault), D.Detail.c_str());
      ++Bad;
    }
  }
  std::printf("side-info audit: %zu methods audited, %zu skipped "
              "(native/indirect/merged), %d faulty\n",
              Audited, Skipped, Bad);
  return Bad;
}

/// Escapes \p S for a JSON string literal (method names are plain ASCII,
/// but quote/backslash safety costs nothing).
std::string jsonEscape(const std::string &S) {
  std::string R;
  R.reserve(S.size());
  for (char C : S) {
    if (C == '"' || C == '\\')
      R.push_back('\\');
    R.push_back(C);
  }
  return R;
}

/// Compiles the app spec, builds + binds its call graph, and prints it as
/// one JSON document: nodes (with live/dead verdicts), edges, entrypoints
/// and recorded anomalies.
int dumpCallGraph(const std::string &AppName, double Scale, uint64_t Seed,
                  bool DeadCode) {
  workload::AppSpec Spec;
  bool Found = false;
  for (const auto &S : workload::paperApps(Scale))
    if (S.Name == AppName) {
      Spec = S;
      Found = true;
    }
  if (!Found) {
    std::fprintf(stderr, "unknown app '%s'\n", AppName.c_str());
    return 1;
  }
  if (Seed)
    Spec.Seed = Seed;
  if (DeadCode)
    workload::enableDeadCode(Spec);

  dex::App App = workload::makeApp(Spec);
  core::CalibroOptions Opts;
  Opts.EnableCto = true;
  auto Compiled = core::compileApp(App, Opts);
  if (!Compiled) {
    std::fprintf(stderr, "compile failed: %s\n", Compiled.message().c_str());
    return 1;
  }
  analysis::CallGraph G = std::move(Compiled->Graph);
  auto Bind = analysis::bindBinaryEdges(G, Compiled->Methods, false);
  if (!Bind) {
    std::fprintf(stderr, "bind failed: %s\n", Bind.message().c_str());
    return 1;
  }
  analysis::Reachability Reach = analysis::computeReachability(G);

  std::unordered_map<uint32_t, const std::string *> Names;
  App.forEachMethod(
      [&](const dex::Method &M) { Names.emplace(M.Idx, &M.Name); });

  std::printf("{\n  \"app\": \"%s\",\n  \"num_methods\": %u,\n"
              "  \"closed_world\": %s,\n  \"live_count\": %u,\n",
              jsonEscape(AppName).c_str(), G.NumMethods,
              G.Entrypoints.empty() ? "false" : "true", Reach.LiveCount);
  std::printf("  \"binary_sites_matched\": %llu,\n"
              "  \"repaired_edges\": %llu,\n",
              (unsigned long long)Bind->SitesMatched,
              (unsigned long long)Bind->RepairedEdges);

  std::printf("  \"entrypoints\": [");
  for (std::size_t I = 0; I < G.Entrypoints.size(); ++I)
    std::printf("%s%u", I ? ", " : "", G.Entrypoints[I]);
  std::printf("],\n");

  std::printf("  \"anomalies\": [");
  for (std::size_t I = 0; I < G.Anomalies.size(); ++I) {
    const analysis::Anomaly &A = G.Anomalies[I];
    std::printf("%s\n    {\"kind\": \"%s\", \"method\": %u, \"detail\": "
                "\"%s\"}",
                I ? "," : "", analysis::anomalyKindName(A.Kind), A.MethodIdx,
                jsonEscape(A.Detail).c_str());
  }
  std::printf("%s],\n", G.Anomalies.empty() ? "" : "\n  ");

  std::printf("  \"nodes\": [");
  bool FirstNode = true;
  for (uint32_t I = 0; I < G.NumMethods; ++I) {
    if (!G.Present[I])
      continue;
    auto N = Names.find(I);
    std::string Name = N == Names.end() ? "" : jsonEscape(*N->second);
    std::printf("%s\n    {\"idx\": %u, \"name\": \"%s\", \"live\": %s}",
                FirstNode ? "" : ",", I, Name.c_str(),
                Reach.Live[I] ? "true" : "false");
    FirstNode = false;
  }
  std::printf("%s],\n", FirstNode ? "" : "\n  ");

  std::printf("  \"edges\": [");
  bool FirstEdge = true;
  for (uint32_t From = 0; From < G.NumMethods; ++From)
    for (uint32_t To : G.Succ[From]) {
      std::printf("%s[%u, %u]", FirstEdge ? "" : ", ", From, To);
      FirstEdge = false;
    }
  std::printf("]\n}\n");
  return 0;
}

/// Dumps the final .text placement as JSON: every placed item (methods in
/// their own code ranges, CTO stubs, outlined functions) in address order
/// with its page index, plus a static affinity-cut summary — how many
/// linked `bl` call sites target a different page than the caller. This is
/// the post-hoc view of what the layout stage optimized: fewer cross-page
/// calls among co-executed code means fewer startup page faults.
int dumpLayoutOrder(const oat::OatFile &O, uint32_t PageSize) {
  struct Item {
    const char *Kind;
    std::string Name;
    uint32_t Idx;
    uint32_t Offset;
    uint32_t Size;
  };
  std::vector<Item> Items;
  std::unordered_map<uint32_t, uint32_t> OffsetOf;
  for (const auto &M : O.Methods)
    if (M.MergedInto == oat::NoMergeParent)
      OffsetOf.emplace(M.MethodIdx, M.CodeOffset);
  for (const auto &M : O.Methods) {
    const char *Kind = "method";
    if (M.MergedInto != oat::NoMergeParent) {
      // A thunk kept its own placed prefix; an alias shares the
      // canonical's range outright and has no own placement — skip it so
      // rows map one-to-one onto placed code ranges.
      auto Canon = OffsetOf.find(M.MergedInto);
      if (Canon != OffsetOf.end() && Canon->second == M.CodeOffset)
        continue;
      Kind = "thunk";
    }
    Items.push_back({Kind, M.Name, M.MethodIdx, M.CodeOffset, M.CodeSize});
  }
  for (uint32_t I = 0; I < O.CtoStubs.size(); ++I)
    Items.push_back(
        {"stub", "", I, O.CtoStubs[I].CodeOffset, O.CtoStubs[I].CodeSize});
  for (const auto &F : O.Outlined)
    Items.push_back({"outlined", "", F.Id, F.CodeOffset, F.CodeSize});
  std::stable_sort(Items.begin(), Items.end(),
                   [](const Item &A, const Item &B) {
                     return A.Offset != B.Offset ? A.Offset < B.Offset
                                                 : A.Size > B.Size;
                   });

  // Static call-affinity cut: decode every non-data word; for each linked
  // `bl` with an in-text target, classify the call same-page/cross-page.
  std::vector<uint8_t> IsData(O.Text.size(), 0);
  for (const auto &M : O.Methods)
    for (const auto &D : M.Side.EmbeddedData)
      for (uint32_t B = 0; B + 4 <= D.Size; B += 4) {
        std::size_t W = (M.CodeOffset + D.Offset + B) / 4;
        if (W < IsData.size())
          IsData[W] = 1;
      }
  uint64_t Calls = 0, CrossPage = 0;
  for (std::size_t W = 0; W < O.Text.size(); ++W) {
    if (IsData[W])
      continue;
    auto I = a64::decode(O.Text[W]);
    if (!I || I->Op != a64::Opcode::Bl)
      continue;
    uint32_t Off = static_cast<uint32_t>(W * 4);
    auto Target = a64::pcRelTarget(*I, O.BaseAddress + Off);
    if (!Target)
      continue;
    int64_t TOff = static_cast<int64_t>(*Target) -
                   static_cast<int64_t>(O.BaseAddress);
    if (TOff < 0 || TOff >= static_cast<int64_t>(O.textBytes()))
      continue;
    ++Calls;
    CrossPage += Off / PageSize != static_cast<uint64_t>(TOff) / PageSize;
  }

  uint64_t Pages = (O.textBytes() + PageSize - 1) / PageSize;
  std::printf("{\n  \"app\": \"%s\",\n  \"page_size\": %u,\n"
              "  \"text_bytes\": %llu,\n  \"text_pages\": %llu,\n",
              jsonEscape(O.AppName).c_str(), PageSize,
              (unsigned long long)O.textBytes(), (unsigned long long)Pages);
  std::printf("  \"affinity_cut\": {\"calls\": %llu, \"cross_page_calls\": "
              "%llu, \"cross_page_fraction\": %.4f},\n",
              (unsigned long long)Calls, (unsigned long long)CrossPage,
              Calls ? static_cast<double>(CrossPage) / Calls : 0.0);
  std::printf("  \"order\": [");
  for (std::size_t I = 0; I < Items.size(); ++I) {
    const Item &It = Items[I];
    std::printf("%s\n    {\"kind\": \"%s\", ", I ? "," : "", It.Kind);
    if (!It.Name.empty())
      std::printf("\"name\": \"%s\", ", jsonEscape(It.Name).c_str());
    std::printf("\"idx\": %u, \"offset\": %u, \"size\": %u, \"page\": %u}",
                It.Idx, It.Offset, It.Size, It.Offset / PageSize);
  }
  std::printf("%s]\n}\n", Items.empty() ? "" : "\n  ");
  return 0;
}

/// Opens a build-cache directory and walks every blob through the same
/// checksum + decode + side-info validation a warm build would apply.
/// Returns nonzero when any entry is corrupt.
int cacheAudit(const char *Dir) {
  auto C = cache::BuildCache::open(Dir);
  if (!C) {
    std::fprintf(stderr, "%s: %s\n", Dir, C.message().c_str());
    return 1;
  }
  cache::CacheAudit A = (*C)->audit();
  std::printf("cache audit of %s:\n"
              "  method entries: %zu (%zu corrupt)\n"
              "  group entries:  %zu (%zu corrupt)\n"
              "  total bytes:    %zu\n",
              Dir, A.MethodEntries, A.MethodCorrupt, A.GroupEntries,
              A.GroupCorrupt, A.TotalBytes);
  return (A.MethodCorrupt || A.GroupCorrupt) ? 1 : 0;
}

} // namespace

int main(int argc, char **argv) {
  bool Disasm = false;
  bool Check = false;
  bool CallGraph = false;
  bool DeadCode = false;
  bool LayoutOrder = false;
  uint32_t PageSize = 4096;
  std::string AppName = "Wechat";
  double Scale = 0.5;
  uint64_t Seed = 0;
  const char *Filter = nullptr;
  const char *Path = nullptr;
  const char *CacheDir = nullptr;
  for (int I = 1; I < argc; ++I) {
    if (!std::strcmp(argv[I], "--disasm"))
      Disasm = true;
    else if (!std::strcmp(argv[I], "--check"))
      Check = true;
    else if (!std::strcmp(argv[I], "--callgraph"))
      CallGraph = true;
    else if (!std::strcmp(argv[I], "--dead-code"))
      DeadCode = true;
    else if (!std::strcmp(argv[I], "--layout-order"))
      LayoutOrder = true;
    else if (!std::strcmp(argv[I], "--page-size") && I + 1 < argc)
      PageSize = static_cast<uint32_t>(std::atoi(argv[++I]));
    else if (!std::strcmp(argv[I], "--app") && I + 1 < argc)
      AppName = argv[++I];
    else if (!std::strcmp(argv[I], "--scale") && I + 1 < argc)
      Scale = std::atof(argv[++I]);
    else if (!std::strcmp(argv[I], "--seed") && I + 1 < argc)
      Seed = std::strtoull(argv[++I], nullptr, 0);
    else if (!std::strcmp(argv[I], "--method") && I + 1 < argc)
      Filter = argv[++I];
    else if (!std::strcmp(argv[I], "--cache-audit") && I + 1 < argc)
      CacheDir = argv[++I];
    else
      Path = argv[I];
  }
  if (CallGraph)
    return dumpCallGraph(AppName, Scale, Seed, DeadCode);
  if (CacheDir)
    return cacheAudit(CacheDir);
  if (!Path) {
    std::fprintf(stderr,
                 "usage: calibro-oatdump [--disasm] [--check] "
                 "[--method <fragment>] [--cache-audit <dir>] <file.oat>\n"
                 "       calibro-oatdump --layout-order [--page-size <n>] "
                 "<file.oat>   # final .text placement + page map +\n"
                 "                # static affinity-cut summary, as JSON\n"
                 "       calibro-oatdump --callgraph [--app <name>] "
                 "[--scale <s>] [--seed <n>] [--dead-code]\n");
    return 2;
  }

  // Map rather than read: dumping only decodes each section once, so
  // parsing straight out of the mapping skips the whole-image heap copy.
  auto Mapped = oat::MappedOat::open(Path);
  if (!Mapped) {
    std::fprintf(stderr, "%s: [%s] %s\n", Path, errCatName(Mapped.category()),
                 Mapped.message().c_str());
    return 1;
  }
  auto O = Mapped->parse();
  if (!O) {
    std::fprintf(stderr, "%s: [%s] %s\n", Path, errCatName(O.category()),
                 O.message().c_str());
    return 1;
  }

  if (LayoutOrder) {
    if (PageSize == 0 || (PageSize & (PageSize - 1))) {
      std::fprintf(stderr, "--page-size must be a power of two\n");
      return 2;
    }
    return dumpLayoutOrder(*O, PageSize);
  }

  if (Check)
    return checkSideInfo(*O) ? 1 : 0;

  if (Filter) {
    std::fputs(oat::dumpOat(*O, false).c_str(), stdout);
    for (const auto &M : O->Methods)
      if (M.Name.find(Filter) != std::string::npos) {
        std::fputs("\n", stdout);
        std::fputs(oat::dumpMethod(*O, M).c_str(), stdout);
      }
    return 0;
  }
  std::fputs(oat::dumpOat(*O, Disasm).c_str(), stdout);
  return 0;
}
