//===- tools/calibro-oatdump.cpp - Inspect OAT files from the CLI -----------===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// oatdump for this repo's OAT (special ELF) files:
///
///   calibro-oatdump file.oat                # header summary
///   calibro-oatdump --disasm file.oat       # full disassembly
///   calibro-oatdump --method W17 file.oat   # methods matching a fragment
///
//===----------------------------------------------------------------------===//

#include "oat/Dump.h"
#include "oat/Serialize.h"

#include <cstdio>
#include <cstring>
#include <string>

using namespace calibro;

int main(int argc, char **argv) {
  bool Disasm = false;
  const char *Filter = nullptr;
  const char *Path = nullptr;
  for (int I = 1; I < argc; ++I) {
    if (!std::strcmp(argv[I], "--disasm"))
      Disasm = true;
    else if (!std::strcmp(argv[I], "--method") && I + 1 < argc)
      Filter = argv[++I];
    else
      Path = argv[I];
  }
  if (!Path) {
    std::fprintf(stderr,
                 "usage: calibro-oatdump [--disasm] [--method <fragment>] "
                 "<file.oat>\n");
    return 2;
  }

  auto O = oat::readOatFile(Path);
  if (!O) {
    std::fprintf(stderr, "%s: %s\n", Path, O.message().c_str());
    return 1;
  }

  if (Filter) {
    std::fputs(oat::dumpOat(*O, false).c_str(), stdout);
    for (const auto &M : O->Methods)
      if (M.Name.find(Filter) != std::string::npos) {
        std::fputs("\n", stdout);
        std::fputs(oat::dumpMethod(*O, M).c_str(), stdout);
      }
    return 0;
  }
  std::fputs(oat::dumpOat(*O, Disasm).c_str(), stdout);
  return 0;
}
