file(REMOVE_RECURSE
  "CMakeFiles/calibro_profile.dir/Profile.cpp.o"
  "CMakeFiles/calibro_profile.dir/Profile.cpp.o.d"
  "libcalibro_profile.a"
  "libcalibro_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calibro_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
