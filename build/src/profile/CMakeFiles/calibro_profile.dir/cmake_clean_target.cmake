file(REMOVE_RECURSE
  "libcalibro_profile.a"
)
