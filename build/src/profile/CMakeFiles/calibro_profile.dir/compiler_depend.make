# Empty compiler generated dependencies file for calibro_profile.
# This may be replaced when dependencies are built.
