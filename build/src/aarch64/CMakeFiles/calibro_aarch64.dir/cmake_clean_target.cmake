file(REMOVE_RECURSE
  "libcalibro_aarch64.a"
)
