# Empty dependencies file for calibro_aarch64.
# This may be replaced when dependencies are built.
