file(REMOVE_RECURSE
  "CMakeFiles/calibro_aarch64.dir/Decoder.cpp.o"
  "CMakeFiles/calibro_aarch64.dir/Decoder.cpp.o.d"
  "CMakeFiles/calibro_aarch64.dir/Disasm.cpp.o"
  "CMakeFiles/calibro_aarch64.dir/Disasm.cpp.o.d"
  "CMakeFiles/calibro_aarch64.dir/Encoder.cpp.o"
  "CMakeFiles/calibro_aarch64.dir/Encoder.cpp.o.d"
  "CMakeFiles/calibro_aarch64.dir/PcRel.cpp.o"
  "CMakeFiles/calibro_aarch64.dir/PcRel.cpp.o.d"
  "libcalibro_aarch64.a"
  "libcalibro_aarch64.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calibro_aarch64.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
