
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/aarch64/Decoder.cpp" "src/aarch64/CMakeFiles/calibro_aarch64.dir/Decoder.cpp.o" "gcc" "src/aarch64/CMakeFiles/calibro_aarch64.dir/Decoder.cpp.o.d"
  "/root/repo/src/aarch64/Disasm.cpp" "src/aarch64/CMakeFiles/calibro_aarch64.dir/Disasm.cpp.o" "gcc" "src/aarch64/CMakeFiles/calibro_aarch64.dir/Disasm.cpp.o.d"
  "/root/repo/src/aarch64/Encoder.cpp" "src/aarch64/CMakeFiles/calibro_aarch64.dir/Encoder.cpp.o" "gcc" "src/aarch64/CMakeFiles/calibro_aarch64.dir/Encoder.cpp.o.d"
  "/root/repo/src/aarch64/PcRel.cpp" "src/aarch64/CMakeFiles/calibro_aarch64.dir/PcRel.cpp.o" "gcc" "src/aarch64/CMakeFiles/calibro_aarch64.dir/PcRel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/calibro_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
