file(REMOVE_RECURSE
  "CMakeFiles/calibro_dex.dir/Dex.cpp.o"
  "CMakeFiles/calibro_dex.dir/Dex.cpp.o.d"
  "libcalibro_dex.a"
  "libcalibro_dex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calibro_dex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
