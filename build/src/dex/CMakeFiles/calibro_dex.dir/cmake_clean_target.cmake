file(REMOVE_RECURSE
  "libcalibro_dex.a"
)
