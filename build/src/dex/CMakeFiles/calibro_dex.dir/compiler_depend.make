# Empty compiler generated dependencies file for calibro_dex.
# This may be replaced when dependencies are built.
