file(REMOVE_RECURSE
  "CMakeFiles/calibro_oat.dir/Dump.cpp.o"
  "CMakeFiles/calibro_oat.dir/Dump.cpp.o.d"
  "CMakeFiles/calibro_oat.dir/Linker.cpp.o"
  "CMakeFiles/calibro_oat.dir/Linker.cpp.o.d"
  "CMakeFiles/calibro_oat.dir/OatFile.cpp.o"
  "CMakeFiles/calibro_oat.dir/OatFile.cpp.o.d"
  "CMakeFiles/calibro_oat.dir/Serialize.cpp.o"
  "CMakeFiles/calibro_oat.dir/Serialize.cpp.o.d"
  "libcalibro_oat.a"
  "libcalibro_oat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calibro_oat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
