
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/oat/Dump.cpp" "src/oat/CMakeFiles/calibro_oat.dir/Dump.cpp.o" "gcc" "src/oat/CMakeFiles/calibro_oat.dir/Dump.cpp.o.d"
  "/root/repo/src/oat/Linker.cpp" "src/oat/CMakeFiles/calibro_oat.dir/Linker.cpp.o" "gcc" "src/oat/CMakeFiles/calibro_oat.dir/Linker.cpp.o.d"
  "/root/repo/src/oat/OatFile.cpp" "src/oat/CMakeFiles/calibro_oat.dir/OatFile.cpp.o" "gcc" "src/oat/CMakeFiles/calibro_oat.dir/OatFile.cpp.o.d"
  "/root/repo/src/oat/Serialize.cpp" "src/oat/CMakeFiles/calibro_oat.dir/Serialize.cpp.o" "gcc" "src/oat/CMakeFiles/calibro_oat.dir/Serialize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/codegen/CMakeFiles/calibro_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/aarch64/CMakeFiles/calibro_aarch64.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/calibro_support.dir/DependInfo.cmake"
  "/root/repo/build/src/hir/CMakeFiles/calibro_hir.dir/DependInfo.cmake"
  "/root/repo/build/src/dex/CMakeFiles/calibro_dex.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
