# Empty dependencies file for calibro_oat.
# This may be replaced when dependencies are built.
