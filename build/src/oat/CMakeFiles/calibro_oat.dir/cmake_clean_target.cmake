file(REMOVE_RECURSE
  "libcalibro_oat.a"
)
