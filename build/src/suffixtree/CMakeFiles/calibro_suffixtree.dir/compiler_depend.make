# Empty compiler generated dependencies file for calibro_suffixtree.
# This may be replaced when dependencies are built.
