file(REMOVE_RECURSE
  "CMakeFiles/calibro_suffixtree.dir/SuffixArray.cpp.o"
  "CMakeFiles/calibro_suffixtree.dir/SuffixArray.cpp.o.d"
  "CMakeFiles/calibro_suffixtree.dir/SuffixTree.cpp.o"
  "CMakeFiles/calibro_suffixtree.dir/SuffixTree.cpp.o.d"
  "libcalibro_suffixtree.a"
  "libcalibro_suffixtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calibro_suffixtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
