file(REMOVE_RECURSE
  "libcalibro_suffixtree.a"
)
