file(REMOVE_RECURSE
  "libcalibro_core.a"
)
