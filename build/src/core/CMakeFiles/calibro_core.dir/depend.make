# Empty dependencies file for calibro_core.
# This may be replaced when dependencies are built.
