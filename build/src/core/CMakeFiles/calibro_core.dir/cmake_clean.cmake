file(REMOVE_RECURSE
  "CMakeFiles/calibro_core.dir/Calibro.cpp.o"
  "CMakeFiles/calibro_core.dir/Calibro.cpp.o.d"
  "CMakeFiles/calibro_core.dir/Outliner.cpp.o"
  "CMakeFiles/calibro_core.dir/Outliner.cpp.o.d"
  "CMakeFiles/calibro_core.dir/RedundancyAnalysis.cpp.o"
  "CMakeFiles/calibro_core.dir/RedundancyAnalysis.cpp.o.d"
  "libcalibro_core.a"
  "libcalibro_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calibro_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
