file(REMOVE_RECURSE
  "CMakeFiles/calibro_hir.dir/HGraph.cpp.o"
  "CMakeFiles/calibro_hir.dir/HGraph.cpp.o.d"
  "CMakeFiles/calibro_hir.dir/Passes.cpp.o"
  "CMakeFiles/calibro_hir.dir/Passes.cpp.o.d"
  "libcalibro_hir.a"
  "libcalibro_hir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calibro_hir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
