file(REMOVE_RECURSE
  "libcalibro_hir.a"
)
