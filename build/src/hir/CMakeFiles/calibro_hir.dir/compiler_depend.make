# Empty compiler generated dependencies file for calibro_hir.
# This may be replaced when dependencies are built.
