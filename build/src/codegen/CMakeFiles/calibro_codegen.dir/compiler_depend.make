# Empty compiler generated dependencies file for calibro_codegen.
# This may be replaced when dependencies are built.
