file(REMOVE_RECURSE
  "CMakeFiles/calibro_codegen.dir/CodeGenerator.cpp.o"
  "CMakeFiles/calibro_codegen.dir/CodeGenerator.cpp.o.d"
  "libcalibro_codegen.a"
  "libcalibro_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calibro_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
