file(REMOVE_RECURSE
  "libcalibro_codegen.a"
)
