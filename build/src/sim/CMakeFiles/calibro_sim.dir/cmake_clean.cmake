file(REMOVE_RECURSE
  "CMakeFiles/calibro_sim.dir/Simulator.cpp.o"
  "CMakeFiles/calibro_sim.dir/Simulator.cpp.o.d"
  "libcalibro_sim.a"
  "libcalibro_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calibro_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
