file(REMOVE_RECURSE
  "libcalibro_sim.a"
)
