# Empty dependencies file for calibro_sim.
# This may be replaced when dependencies are built.
