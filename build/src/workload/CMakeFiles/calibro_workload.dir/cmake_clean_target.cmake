file(REMOVE_RECURSE
  "libcalibro_workload.a"
)
