# Empty compiler generated dependencies file for calibro_workload.
# This may be replaced when dependencies are built.
