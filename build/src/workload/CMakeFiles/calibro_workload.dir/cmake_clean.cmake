file(REMOVE_RECURSE
  "CMakeFiles/calibro_workload.dir/Workload.cpp.o"
  "CMakeFiles/calibro_workload.dir/Workload.cpp.o.d"
  "libcalibro_workload.a"
  "libcalibro_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calibro_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
