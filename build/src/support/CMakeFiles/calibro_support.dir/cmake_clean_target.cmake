file(REMOVE_RECURSE
  "libcalibro_support.a"
)
