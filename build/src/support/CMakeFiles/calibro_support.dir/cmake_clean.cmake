file(REMOVE_RECURSE
  "CMakeFiles/calibro_support.dir/Random.cpp.o"
  "CMakeFiles/calibro_support.dir/Random.cpp.o.d"
  "CMakeFiles/calibro_support.dir/ThreadPool.cpp.o"
  "CMakeFiles/calibro_support.dir/ThreadPool.cpp.o.d"
  "libcalibro_support.a"
  "libcalibro_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calibro_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
