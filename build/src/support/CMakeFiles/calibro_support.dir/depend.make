# Empty dependencies file for calibro_support.
# This may be replaced when dependencies are built.
