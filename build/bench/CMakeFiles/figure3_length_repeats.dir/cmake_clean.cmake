file(REMOVE_RECURSE
  "CMakeFiles/figure3_length_repeats.dir/figure3_length_repeats.cpp.o"
  "CMakeFiles/figure3_length_repeats.dir/figure3_length_repeats.cpp.o.d"
  "figure3_length_repeats"
  "figure3_length_repeats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure3_length_repeats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
