# Empty compiler generated dependencies file for figure3_length_repeats.
# This may be replaced when dependencies are built.
