file(REMOVE_RECURSE
  "CMakeFiles/micro_aarch64.dir/micro_aarch64.cpp.o"
  "CMakeFiles/micro_aarch64.dir/micro_aarch64.cpp.o.d"
  "micro_aarch64"
  "micro_aarch64.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_aarch64.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
