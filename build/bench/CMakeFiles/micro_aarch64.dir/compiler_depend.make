# Empty compiler generated dependencies file for micro_aarch64.
# This may be replaced when dependencies are built.
