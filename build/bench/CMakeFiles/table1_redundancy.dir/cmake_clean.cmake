file(REMOVE_RECURSE
  "CMakeFiles/table1_redundancy.dir/table1_redundancy.cpp.o"
  "CMakeFiles/table1_redundancy.dir/table1_redundancy.cpp.o.d"
  "table1_redundancy"
  "table1_redundancy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_redundancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
