# Empty compiler generated dependencies file for table5_memory.
# This may be replaced when dependencies are built.
