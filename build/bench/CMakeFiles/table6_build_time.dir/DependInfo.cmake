
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table6_build_time.cpp" "bench/CMakeFiles/table6_build_time.dir/table6_build_time.cpp.o" "gcc" "bench/CMakeFiles/table6_build_time.dir/table6_build_time.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/calibro_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/calibro_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/calibro_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/oat/CMakeFiles/calibro_oat.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/calibro_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/hir/CMakeFiles/calibro_hir.dir/DependInfo.cmake"
  "/root/repo/build/src/dex/CMakeFiles/calibro_dex.dir/DependInfo.cmake"
  "/root/repo/build/src/suffixtree/CMakeFiles/calibro_suffixtree.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/calibro_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/aarch64/CMakeFiles/calibro_aarch64.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/calibro_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
