# Empty compiler generated dependencies file for micro_suffixtree.
# This may be replaced when dependencies are built.
