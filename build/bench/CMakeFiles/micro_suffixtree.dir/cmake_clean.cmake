file(REMOVE_RECURSE
  "CMakeFiles/micro_suffixtree.dir/micro_suffixtree.cpp.o"
  "CMakeFiles/micro_suffixtree.dir/micro_suffixtree.cpp.o.d"
  "micro_suffixtree"
  "micro_suffixtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_suffixtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
