# Empty dependencies file for obs3_art_patterns.
# This may be replaced when dependencies are built.
