file(REMOVE_RECURSE
  "CMakeFiles/obs3_art_patterns.dir/obs3_art_patterns.cpp.o"
  "CMakeFiles/obs3_art_patterns.dir/obs3_art_patterns.cpp.o.d"
  "obs3_art_patterns"
  "obs3_art_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/obs3_art_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
