file(REMOVE_RECURSE
  "CMakeFiles/calibro-run.dir/calibro-run.cpp.o"
  "CMakeFiles/calibro-run.dir/calibro-run.cpp.o.d"
  "calibro-run"
  "calibro-run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calibro-run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
