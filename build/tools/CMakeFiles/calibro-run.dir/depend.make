# Empty dependencies file for calibro-run.
# This may be replaced when dependencies are built.
