# Empty compiler generated dependencies file for calibro-oatdump.
# This may be replaced when dependencies are built.
