file(REMOVE_RECURSE
  "CMakeFiles/calibro-oatdump.dir/calibro-oatdump.cpp.o"
  "CMakeFiles/calibro-oatdump.dir/calibro-oatdump.cpp.o.d"
  "calibro-oatdump"
  "calibro-oatdump.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calibro-oatdump.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
