# Empty dependencies file for calibro-dex2oat.
# This may be replaced when dependencies are built.
