file(REMOVE_RECURSE
  "CMakeFiles/calibro-dex2oat.dir/calibro-dex2oat.cpp.o"
  "CMakeFiles/calibro-dex2oat.dir/calibro-dex2oat.cpp.o.d"
  "calibro-dex2oat"
  "calibro-dex2oat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calibro-dex2oat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
