# Empty dependencies file for app_pipeline.
# This may be replaced when dependencies are built.
