file(REMOVE_RECURSE
  "CMakeFiles/app_pipeline.dir/app_pipeline.cpp.o"
  "CMakeFiles/app_pipeline.dir/app_pipeline.cpp.o.d"
  "app_pipeline"
  "app_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/app_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
