file(REMOVE_RECURSE
  "CMakeFiles/profile_guided.dir/profile_guided.cpp.o"
  "CMakeFiles/profile_guided.dir/profile_guided.cpp.o.d"
  "profile_guided"
  "profile_guided.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profile_guided.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
