file(REMOVE_RECURSE
  "CMakeFiles/outline_walkthrough.dir/outline_walkthrough.cpp.o"
  "CMakeFiles/outline_walkthrough.dir/outline_walkthrough.cpp.o.d"
  "outline_walkthrough"
  "outline_walkthrough.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/outline_walkthrough.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
