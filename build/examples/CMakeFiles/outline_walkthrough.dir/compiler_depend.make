# Empty compiler generated dependencies file for outline_walkthrough.
# This may be replaced when dependencies are built.
