file(REMOVE_RECURSE
  "CMakeFiles/oat_inspect.dir/oat_inspect.cpp.o"
  "CMakeFiles/oat_inspect.dir/oat_inspect.cpp.o.d"
  "oat_inspect"
  "oat_inspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oat_inspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
