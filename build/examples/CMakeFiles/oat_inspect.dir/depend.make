# Empty dependencies file for oat_inspect.
# This may be replaced when dependencies are built.
