file(REMOVE_RECURSE
  "CMakeFiles/test_outliner.dir/test_outliner.cpp.o"
  "CMakeFiles/test_outliner.dir/test_outliner.cpp.o.d"
  "test_outliner"
  "test_outliner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_outliner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
