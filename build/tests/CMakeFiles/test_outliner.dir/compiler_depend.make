# Empty compiler generated dependencies file for test_outliner.
# This may be replaced when dependencies are built.
