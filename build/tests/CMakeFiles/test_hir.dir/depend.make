# Empty dependencies file for test_hir.
# This may be replaced when dependencies are built.
