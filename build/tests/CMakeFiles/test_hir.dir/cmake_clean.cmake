file(REMOVE_RECURSE
  "CMakeFiles/test_hir.dir/test_hir.cpp.o"
  "CMakeFiles/test_hir.dir/test_hir.cpp.o.d"
  "test_hir"
  "test_hir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
