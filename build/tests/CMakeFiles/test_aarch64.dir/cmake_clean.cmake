file(REMOVE_RECURSE
  "CMakeFiles/test_aarch64.dir/test_aarch64.cpp.o"
  "CMakeFiles/test_aarch64.dir/test_aarch64.cpp.o.d"
  "test_aarch64"
  "test_aarch64.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_aarch64.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
