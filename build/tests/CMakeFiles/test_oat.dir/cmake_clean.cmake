file(REMOVE_RECURSE
  "CMakeFiles/test_oat.dir/test_oat.cpp.o"
  "CMakeFiles/test_oat.dir/test_oat.cpp.o.d"
  "test_oat"
  "test_oat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_oat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
