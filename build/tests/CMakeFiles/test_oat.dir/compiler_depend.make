# Empty compiler generated dependencies file for test_oat.
# This may be replaced when dependencies are built.
