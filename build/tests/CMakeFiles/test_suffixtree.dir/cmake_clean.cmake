file(REMOVE_RECURSE
  "CMakeFiles/test_suffixtree.dir/test_suffixtree.cpp.o"
  "CMakeFiles/test_suffixtree.dir/test_suffixtree.cpp.o.d"
  "test_suffixtree"
  "test_suffixtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_suffixtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
