# Empty compiler generated dependencies file for test_suffixtree.
# This may be replaced when dependencies are built.
