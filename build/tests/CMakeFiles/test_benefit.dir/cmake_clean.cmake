file(REMOVE_RECURSE
  "CMakeFiles/test_benefit.dir/test_benefit.cpp.o"
  "CMakeFiles/test_benefit.dir/test_benefit.cpp.o.d"
  "test_benefit"
  "test_benefit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_benefit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
