# Empty dependencies file for test_benefit.
# This may be replaced when dependencies are built.
