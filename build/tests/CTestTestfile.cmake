# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_aarch64 "/root/repo/build/tests/test_aarch64")
set_tests_properties(test_aarch64 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;11;calibro_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_benefit "/root/repo/build/tests/test_benefit")
set_tests_properties(test_benefit PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;12;calibro_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_codegen "/root/repo/build/tests/test_codegen")
set_tests_properties(test_codegen PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;13;calibro_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_dex "/root/repo/build/tests/test_dex")
set_tests_properties(test_dex PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;14;calibro_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_hir "/root/repo/build/tests/test_hir")
set_tests_properties(test_hir PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;15;calibro_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_integration "/root/repo/build/tests/test_integration")
set_tests_properties(test_integration PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;16;calibro_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_oat "/root/repo/build/tests/test_oat")
set_tests_properties(test_oat PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;17;calibro_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_outliner "/root/repo/build/tests/test_outliner")
set_tests_properties(test_outliner PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;18;calibro_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_profile "/root/repo/build/tests/test_profile")
set_tests_properties(test_profile PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;19;calibro_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_serialize "/root/repo/build/tests/test_serialize")
set_tests_properties(test_serialize PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;20;calibro_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_sim "/root/repo/build/tests/test_sim")
set_tests_properties(test_sim PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;21;calibro_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_suffixtree "/root/repo/build/tests/test_suffixtree")
set_tests_properties(test_suffixtree PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;22;calibro_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_support "/root/repo/build/tests/test_support")
set_tests_properties(test_support PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;23;calibro_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_workload "/root/repo/build/tests/test_workload")
set_tests_properties(test_workload PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;24;calibro_add_test;/root/repo/tests/CMakeLists.txt;0;")
